"""Abstract syntax tree for PsimC.

Nodes are plain dataclasses.  Expression nodes carry a ``ctype`` slot that
the semantic analyzer (``repro.frontend.sema``) fills in; the analyzer
also rewrites the tree to make implicit conversions explicit ``Cast``
nodes, so lowering never has to think about C's conversion rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .ctypes import CType

__all__ = [
    "Node", "Expr", "Stmt",
    "IntLit", "FloatLit", "BoolLit", "Ident", "Unary", "Binary", "Ternary",
    "Call", "Index", "Deref", "AddrOf", "Cast",
    "Block", "VarDecl", "Assign", "ExprStmt", "IfStmt", "WhileStmt",
    "ForStmt", "ReturnStmt", "BreakStmt", "ContinueStmt", "PsimStmt",
    "Param", "FuncDef", "Program",
]


@dataclass
class Node:
    line: int = field(default=0, compare=False)


# ----------------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------------


@dataclass
class Expr(Node):
    ctype: Optional[CType] = field(default=None, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0
    suffix: str = ""  # 'u', 'l', 'ul'


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    suffix: str = ""  # 'f' for f32


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # '-', '!', '~', '+'
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""  # arithmetic/logic/comparison operator text
    left: Expr = None
    right: Expr = None


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then: Expr = None
    els: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Deref(Expr):
    operand: Expr = None


@dataclass
class AddrOf(Expr):
    operand: Expr = None  # must be an Index or Ident(array local)


@dataclass
class Cast(Expr):
    target: CType = None
    operand: Expr = None
    implicit: bool = False


# ----------------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ctype: CType = None
    init: Optional[Expr] = None
    array_size: Optional[int] = None  # fixed-size local array


@dataclass
class Assign(Stmt):
    target: Expr = None  # Ident | Index | Deref
    op: str = "="  # '=', '+=', '-=', ...
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then: Stmt = None
    els: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Stmt = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class PsimStmt(Stmt):
    """A ``psim (gang_size=G, num_threads=N) { ... }`` SPMD region (§3)."""

    gang_size: Expr = None  # must be a compile-time constant
    count_kind: str = "num_threads"  # or 'num_gangs'
    count: Expr = None
    body: Block = None


# ----------------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    ctype: CType = None


@dataclass
class FuncDef(Node):
    name: str = ""
    ret: CType = None
    params: List[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class Program(Node):
    functions: List[FuncDef] = field(default_factory=list)
