"""Semantic analysis for PsimC.

Resolves identifiers, type-checks every expression, inserts implicit
conversions as explicit ``Cast`` nodes (C's usual arithmetic conversions),
resolves builtin / Parsimony-intrinsic calls, and analyzes ``psim``
regions: the gang size must be a compile-time constant (§3) and the set
of captured outer variables is computed here for the outliner (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..diagnostics import CompileError
from . import ast
from .ctypes import BOOL, CType, SCALAR_TYPES, VOIDT, ptr
from .intrinsics import BuiltinSig, lookup_builtin

__all__ = ["SemaError", "Sema", "Symbol", "usual_arithmetic_conversion", "analyze"]

I32T = SCALAR_TYPES["i32"]
I64T = SCALAR_TYPES["i64"]
U64T = SCALAR_TYPES["u64"]
F64T = SCALAR_TYPES["f64"]


class SemaError(CompileError, TypeError):
    """A type or scoping error in PsimC source."""

    default_stage = "frontend"

    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(eq=False)
class Symbol:
    """A declared variable (parameter, local, or fixed-size local array)."""

    name: str
    ctype: CType  # for arrays: the *element* type
    kind: str  # 'param' | 'local' | 'array'
    level: int = 0
    array_size: Optional[int] = None

    @property
    def value_ctype(self) -> CType:
        """Type of the symbol when it appears in an expression."""
        return ptr(self.ctype) if self.kind == "array" else self.ctype


@dataclass
class FuncSig:
    name: str
    ret: CType
    params: List[CType]


def integer_promote(t: CType) -> CType:
    """C integer promotion: bool and sub-32-bit ints promote to i32."""
    if t.is_bool:
        return I32T
    if t.is_int and t.bits < 32:
        return I32T
    return t


def usual_arithmetic_conversion(a: CType, b: CType) -> CType:
    """C's usual arithmetic conversions over PsimC's type lattice."""
    if a.is_float or b.is_float:
        if a.is_float and b.is_float:
            return a if a.bits >= b.bits else b
        return a if a.is_float else b
    a, b = integer_promote(a), integer_promote(b)
    if a == b:
        return a
    if a.bits != b.bits:
        wide, narrow = (a, b) if a.bits > b.bits else (b, a)
        if wide.signed and not narrow.signed and narrow.bits < wide.bits:
            return wide  # unsigned narrow fits in signed wide
        if not wide.signed:
            return wide
        return wide
    # same width, different signedness: unsigned wins (as in C)
    return a if not a.signed else b


def _can_implicitly_convert(src: CType, dst: CType) -> bool:
    if src == dst:
        return True
    if src.is_pointer or dst.is_pointer:
        return src == dst
    if dst.is_bool:
        return src.is_bool
    # any arithmetic/bool -> arithmetic conversion is allowed, C-style
    return (src.is_arithmetic or src.is_bool) and dst.is_arithmetic


class Sema:
    """Analyzes (and annotates, in place) a parsed program."""

    def __init__(self, program: ast.Program, force_gang_size: Optional[int] = None):
        self.program = program
        #: When set, overrides every region's gang_size — reproduces ispc's
        #: behaviour of coupling the gang size to a compiler flag (§1, §2.2).
        self.force_gang_size = force_gang_size
        self.functions: Dict[str, FuncSig] = {}
        self._scopes: List[Dict[str, Symbol]] = []
        self._current_ret: Optional[CType] = None
        self._loop_depth = 0
        self._psim: Optional[ast.PsimStmt] = None
        self._psim_level = 0

    # -- entry point -------------------------------------------------------------

    def analyze(self) -> ast.Program:
        for func in self.program.functions:
            if func.name in self.functions:
                raise SemaError(func.line, f"duplicate function {func.name!r}")
            self.functions[func.name] = FuncSig(
                func.name, func.ret, [p.ctype for p in func.params]
            )
        for func in self.program.functions:
            self._analyze_function(func)
        return self.program

    # -- scopes -------------------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _declare(self, line: int, symbol: Symbol) -> Symbol:
        scope = self._scopes[-1]
        if symbol.name in scope:
            raise SemaError(line, f"redeclaration of {symbol.name!r}")
        symbol.level = len(self._scopes) - 1
        scope[symbol.name] = symbol
        return symbol

    def _lookup(self, line: int, name: str) -> Symbol:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise SemaError(line, f"undeclared identifier {name!r}")

    # -- functions & statements ------------------------------------------------------

    def _analyze_function(self, func: ast.FuncDef) -> None:
        self._current_ret = func.ret
        self._push_scope()
        for param in func.params:
            if param.ctype.is_void:
                raise SemaError(param.line, "parameter of void type")
            param.symbol = self._declare(param.line, Symbol(param.name, param.ctype, "param"))
        self._analyze_block(func.body)
        self._pop_scope()

    def _analyze_block(self, block: ast.Block) -> None:
        self._push_scope()
        for stmt in block.stmts:
            self._analyze_stmt(stmt)
        self._pop_scope()

    def _analyze_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._analyze_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._analyze_vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._analyze_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            stmt.cond = self._to_bool(self._expr(stmt.cond))
            self._analyze_stmt(stmt.then)
            if stmt.els is not None:
                self._analyze_stmt(stmt.els)
        elif isinstance(stmt, ast.WhileStmt):
            stmt.cond = self._to_bool(self._expr(stmt.cond))
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            self._push_scope()
            if stmt.init is not None:
                self._analyze_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._to_bool(self._expr(stmt.cond))
            if stmt.step is not None:
                self._analyze_stmt(stmt.step)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
            self._pop_scope()
        elif isinstance(stmt, ast.ReturnStmt):
            if self._psim is not None:
                raise SemaError(stmt.line, "return is not allowed inside a psim region")
            if stmt.value is not None:
                if self._current_ret.is_void:
                    raise SemaError(stmt.line, "return with value in void function")
                stmt.value = self._coerce(self._expr(stmt.value), self._current_ret)
            elif not self._current_ret.is_void:
                raise SemaError(stmt.line, "return without value in non-void function")
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                raise SemaError(stmt.line, "break/continue outside a loop")
        elif isinstance(stmt, ast.PsimStmt):
            self._analyze_psim(stmt)
        else:
            raise SemaError(stmt.line, f"unhandled statement {type(stmt).__name__}")

    def _analyze_vardecl(self, stmt: ast.VarDecl) -> None:
        if stmt.ctype.is_void:
            raise SemaError(stmt.line, "variable of void type")
        if stmt.array_size is not None:
            if stmt.init is not None:
                raise SemaError(stmt.line, "array initializers are not supported")
            if stmt.array_size < 1:
                raise SemaError(stmt.line, "array size must be positive")
            symbol = Symbol(stmt.name, stmt.ctype, "array", array_size=stmt.array_size)
        else:
            symbol = Symbol(stmt.name, stmt.ctype, "local")
            if stmt.init is not None:
                stmt.init = self._coerce(self._expr(stmt.init), stmt.ctype)
        stmt.symbol = self._declare(stmt.line, symbol)

    def _analyze_assign(self, stmt: ast.Assign) -> None:
        target = self._expr(stmt.target)
        if not isinstance(target, (ast.Ident, ast.Index, ast.Deref)):
            raise SemaError(stmt.line, "assignment target is not an lvalue")
        if isinstance(target, ast.Ident):
            symbol = target.symbol
            if symbol.kind == "array":
                raise SemaError(stmt.line, f"cannot assign to array {symbol.name!r}")
            if self._psim is not None and symbol.level < self._psim_level:
                raise SemaError(
                    stmt.line,
                    f"cannot assign to captured variable {symbol.name!r} inside a "
                    "psim region (captures are by value; write through a pointer)",
                )
        stmt.target = target
        value = self._expr(stmt.value)
        if stmt.op != "=":
            # Compound assignment: a op= b  ==>  a = a op b (with conversions).
            binop = ast.Binary(
                line=stmt.line, op=stmt.op[:-1], left=target, right=value
            )
            value = self._binary(binop)
            stmt.op = "="
        stmt.value = self._coerce(value, target.ctype)

    def _analyze_psim(self, stmt: ast.PsimStmt) -> None:
        if self._psim is not None:
            raise SemaError(stmt.line, "psim regions cannot nest")
        gang_size = self._const_int(self._expr(stmt.gang_size))
        if self.force_gang_size is not None:
            gang_size = self.force_gang_size
        if gang_size is None or gang_size < 1:
            raise SemaError(
                stmt.line, "gang_size must be a positive compile-time constant"
            )
        if gang_size & (gang_size - 1):
            raise SemaError(stmt.line, "gang_size must be a power of two")
        stmt.gang_size_value = gang_size
        stmt.count = self._coerce(self._expr(stmt.count), U64T)

        self._psim = stmt
        self._psim_level = len(self._scopes)
        stmt.captures = []
        self._push_scope()
        for body_stmt in stmt.body.stmts:
            self._analyze_stmt(body_stmt)
        self._pop_scope()
        self._psim = None

    # -- expressions -------------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> ast.Expr:
        if expr.ctype is not None:
            return expr  # already analyzed (e.g. reused lvalue in compound assign)
        if isinstance(expr, ast.IntLit):
            if "u" in expr.suffix:
                expr.ctype = SCALAR_TYPES["u64"] if ("l" in expr.suffix or expr.value > 0xFFFFFFFF) else SCALAR_TYPES["u32"]
            elif "l" in expr.suffix or expr.value > 0x7FFFFFFF or expr.value < -(1 << 31):
                expr.ctype = I64T
            else:
                expr.ctype = I32T
            return expr
        if isinstance(expr, ast.FloatLit):
            expr.ctype = SCALAR_TYPES["f32"] if "f" in expr.suffix else F64T
            return expr
        if isinstance(expr, ast.BoolLit):
            expr.ctype = BOOL
            return expr
        if isinstance(expr, ast.Ident):
            symbol = self._lookup(expr.line, expr.name)
            expr.symbol = symbol
            expr.ctype = symbol.value_ctype
            self._note_capture(symbol)
            return expr
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.Binary):
            return self._binary(expr)
        if isinstance(expr, ast.Ternary):
            expr.cond = self._to_bool(self._expr(expr.cond))
            then, els = self._expr(expr.then), self._expr(expr.els)
            if then.ctype.is_pointer or els.ctype.is_pointer:
                if then.ctype != els.ctype:
                    raise SemaError(expr.line, "ternary arms have different pointer types")
                t = then.ctype
            else:
                t = usual_arithmetic_conversion(then.ctype, els.ctype)
            expr.then = self._coerce(then, t)
            expr.els = self._coerce(els, t)
            expr.ctype = t
            return expr
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Index):
            base = self._expr(expr.base)
            if not base.ctype.is_pointer:
                raise SemaError(expr.line, f"cannot index non-pointer {base.ctype}")
            index = self._expr(expr.index)
            if not (index.ctype.is_int or index.ctype.is_bool):
                raise SemaError(expr.line, "array index must be an integer")
            expr.base, expr.index = base, index
            expr.ctype = base.ctype.pointee
            return expr
        if isinstance(expr, ast.Deref):
            operand = self._expr(expr.operand)
            if not operand.ctype.is_pointer:
                raise SemaError(expr.line, f"cannot dereference {operand.ctype}")
            expr.operand = operand
            expr.ctype = operand.ctype.pointee
            return expr
        if isinstance(expr, ast.AddrOf):
            operand = self._expr(expr.operand)
            if isinstance(operand, ast.Index):
                expr.ctype = ptr(operand.ctype)
            elif isinstance(operand, ast.Ident) and operand.symbol.kind in ("local", "param"):
                if self._psim is not None and operand.symbol.level < self._psim_level:
                    raise SemaError(
                        expr.line, "cannot take the address of a captured variable"
                    )
                operand.symbol.address_taken = True
                expr.ctype = ptr(operand.ctype)
            else:
                raise SemaError(expr.line, "cannot take the address of this expression")
            expr.operand = operand
            return expr
        if isinstance(expr, ast.Cast):
            operand = self._expr(expr.operand)
            src, dst = operand.ctype, expr.target
            ok = (
                (src.is_arithmetic or src.is_bool) and (dst.is_arithmetic or dst.is_bool)
            ) or (src.is_pointer and dst.is_pointer) or (
                src.is_pointer and dst.is_int and dst.bits == 64
            ) or (src.is_int and dst.is_pointer)
            if not ok:
                raise SemaError(expr.line, f"invalid cast from {src} to {dst}")
            expr.operand = operand
            expr.ctype = dst
            return expr
        raise SemaError(expr.line, f"unhandled expression {type(expr).__name__}")

    def _unary(self, expr: ast.Unary) -> ast.Expr:
        operand = self._expr(expr.operand)
        if expr.op == "!":
            expr.operand = self._to_bool(operand)
            expr.ctype = BOOL
            return expr
        if expr.op == "-":
            if not operand.ctype.is_arithmetic:
                raise SemaError(expr.line, f"cannot negate {operand.ctype}")
            t = operand.ctype if operand.ctype.is_float else integer_promote(operand.ctype)
            expr.operand = self._coerce(operand, t)
            expr.ctype = t
            return expr
        if expr.op == "~":
            if not (operand.ctype.is_int or operand.ctype.is_bool):
                raise SemaError(expr.line, f"cannot bit-complement {operand.ctype}")
            t = integer_promote(operand.ctype)
            expr.operand = self._coerce(operand, t)
            expr.ctype = t
            return expr
        raise SemaError(expr.line, f"unhandled unary operator {expr.op!r}")

    def _binary(self, expr: ast.Binary) -> ast.Expr:
        left, right = self._expr(expr.left), self._expr(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            expr.left = self._to_bool(left)
            expr.right = self._to_bool(right)
            expr.ctype = BOOL
            return expr
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if left.ctype.is_pointer or right.ctype.is_pointer:
                if left.ctype != right.ctype:
                    raise SemaError(expr.line, "comparison of incompatible pointers")
                expr.left, expr.right = left, right
            else:
                t = usual_arithmetic_conversion(left.ctype, right.ctype)
                expr.left = self._coerce(left, t)
                expr.right = self._coerce(right, t)
            expr.ctype = BOOL
            return expr
        if op in ("<<", ">>"):
            if not (left.ctype.is_int or left.ctype.is_bool) or not (
                right.ctype.is_int or right.ctype.is_bool
            ):
                raise SemaError(expr.line, "shift operands must be integers")
            t = integer_promote(left.ctype)
            expr.left = self._coerce(left, t)
            expr.right = self._coerce(right, t)
            expr.ctype = t
            return expr
        if op in ("+", "-") and (left.ctype.is_pointer or right.ctype.is_pointer):
            if op == "+" and right.ctype.is_pointer and not left.ctype.is_pointer:
                left, right = right, left  # normalize int + ptr
            if not left.ctype.is_pointer or not (right.ctype.is_int or right.ctype.is_bool):
                raise SemaError(expr.line, "invalid pointer arithmetic")
            expr.left, expr.right = left, self._coerce(right, I64T)
            expr.ctype = left.ctype
            return expr
        if op in ("+", "-", "*", "/", "%", "&", "|", "^"):
            if not (left.ctype.is_arithmetic or left.ctype.is_bool) or not (
                right.ctype.is_arithmetic or right.ctype.is_bool
            ):
                raise SemaError(expr.line, f"invalid operands to {op!r}")
            t = usual_arithmetic_conversion(left.ctype, right.ctype)
            if t.is_float and op in ("%", "&", "|", "^"):
                raise SemaError(expr.line, f"operator {op!r} requires integer operands")
            expr.left = self._coerce(left, t)
            expr.right = self._coerce(right, t)
            expr.ctype = t
            return expr
        raise SemaError(expr.line, f"unhandled binary operator {op!r}")

    def _call(self, expr: ast.Call) -> ast.Expr:
        args = [self._expr(a) for a in expr.args]
        try:
            sig = lookup_builtin(
                expr.name, [a.ctype for a in args], in_psim=self._psim is not None
            )
        except TypeError as exc:
            raise SemaError(expr.line, str(exc)) from exc
        if sig is not None:
            expr.args = [self._coerce(a, t) for a, t in zip(args, sig.arg_types)]
            expr.builtin = sig
            expr.ctype = sig.result
            return expr
        func = self.functions.get(expr.name)
        if func is None:
            raise SemaError(expr.line, f"call to undeclared function {expr.name!r}")
        if len(args) != len(func.params):
            raise SemaError(
                expr.line,
                f"{expr.name} expects {len(func.params)} arguments, got {len(args)}",
            )
        expr.args = [self._coerce(a, t) for a, t in zip(args, func.params)]
        expr.builtin = None
        expr.ctype = func.ret
        return expr

    # -- helpers ---------------------------------------------------------------------

    def _note_capture(self, symbol: Symbol) -> None:
        if self._psim is not None and symbol.level < self._psim_level:
            if symbol not in self._psim.captures:
                self._psim.captures.append(symbol)

    def _to_bool(self, expr: ast.Expr) -> ast.Expr:
        if expr.ctype.is_bool:
            return expr
        if expr.ctype.is_arithmetic or expr.ctype.is_pointer:
            cast = ast.Cast(line=expr.line, target=BOOL, operand=expr, implicit=True)
            cast.ctype = BOOL
            return cast
        raise SemaError(expr.line, f"cannot use {expr.ctype} as a condition")

    def _coerce(self, expr: ast.Expr, target: CType) -> ast.Expr:
        if expr.ctype == target:
            return expr
        if not _can_implicitly_convert(expr.ctype, target):
            raise SemaError(
                expr.line, f"cannot implicitly convert {expr.ctype} to {target}"
            )
        cast = ast.Cast(line=expr.line, target=target, operand=expr, implicit=True)
        cast.ctype = target
        return cast

    def _const_int(self, expr: ast.Expr) -> Optional[int]:
        """Tiny compile-time integer evaluator (for gang_size)."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Cast):
            return self._const_int(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._const_int(expr.operand)
            return None if inner is None else -inner
        if isinstance(expr, ast.Binary):
            left, right = self._const_int(expr.left), self._const_int(expr.right)
            if left is None or right is None:
                return None
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b if b else None,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
            }
            fn = ops.get(expr.op)
            return None if fn is None else fn(left, right)
        return None


def analyze(program: ast.Program, force_gang_size: Optional[int] = None) -> ast.Program:
    """Convenience wrapper: run semantic analysis on a parsed program."""
    return Sema(program, force_gang_size).analyze()
