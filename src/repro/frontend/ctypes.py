"""Source-level types for PsimC.

PsimC is the small C-like language the reproduction uses in place of the
paper's "Parsimony-enabled C++" (§3): the IR is sign-less like LLVM's, so
the front-end carries signedness here and picks signed/unsigned IR
operations during lowering, exactly as Clang does.
"""

from __future__ import annotations

from typing import Optional

from ..ir.types import (
    F32,
    F64,
    I1,
    I8,
    I16,
    I32,
    I64,
    PointerType,
    Type,
    VOID,
)

__all__ = ["CType", "ptr", "BOOL", "VOIDT", "SCALAR_TYPES", "type_by_name"]


class CType:
    """A PsimC type: an IR type plus signedness (and pointee for pointers)."""

    def __init__(self, name: str, ir: Type, signed: bool, pointee: Optional["CType"] = None):
        self.name = name
        self.ir = ir
        self.signed = signed
        self.pointee = pointee

    # -- predicates -----------------------------------------------------------

    @property
    def is_void(self) -> bool:
        return self.ir.is_void

    @property
    def is_bool(self) -> bool:
        return self.ir == I1

    @property
    def is_int(self) -> bool:
        return self.ir.is_int and self.ir != I1

    @property
    def is_float(self) -> bool:
        return self.ir.is_float

    @property
    def is_pointer(self) -> bool:
        return self.ir.is_pointer

    @property
    def is_arithmetic(self) -> bool:
        return self.is_int or self.is_float

    @property
    def bits(self) -> int:
        return self.ir.bits

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CType)
            and self.ir == other.ir
            and self.signed == other.signed
            and self.pointee == other.pointee
        )

    def __hash__(self) -> int:
        return hash((self.ir, self.signed))

    def __repr__(self) -> str:
        return self.name


VOIDT = CType("void", VOID, False)
BOOL = CType("bool", I1, False)
I8T = CType("i8", I8, True)
U8T = CType("u8", I8, False)
I16T = CType("i16", I16, True)
U16T = CType("u16", I16, False)
I32T = CType("i32", I32, True)
U32T = CType("u32", I32, False)
I64T = CType("i64", I64, True)
U64T = CType("u64", I64, False)
F32T = CType("f32", F32, True)
F64T = CType("f64", F64, True)

SCALAR_TYPES = {
    t.name: t
    for t in (VOIDT, BOOL, I8T, U8T, I16T, U16T, I32T, U32T, I64T, U64T, F32T, F64T)
}


def ptr(pointee: CType) -> CType:
    """Pointer-to-``pointee`` type."""
    return CType(f"{pointee.name}*", PointerType(pointee.ir), False, pointee)


def type_by_name(name: str) -> Optional[CType]:
    return SCALAR_TYPES.get(name)
