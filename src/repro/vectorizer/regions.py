"""Region-granular scalar fallback: outline the failing region (§4.2).

PR 2's graceful degradation is whole-function: one unsupported construct
and the entire SPMD body becomes a sequential lane loop, forfeiting every
vectorizable block around it.  This module implements the finer-grained
variant the paper's integration story really wants — when the vectorizer
rejects one block, *only the minimal single-entry region around it* drops
to scalar execution, and the rest of the function still vectorizes.

The mechanism is **scalar outlining**:

1. :func:`compute_fallback_region` picks the smallest dominator subtree
   ``R = subtree(E)`` containing the failing block such that

   * ``R`` has at most one successor block outside itself (so the caller
     can resume at a unique seam exit),
   * ``R`` does not mix ``ret`` terminators with an outside successor
     (a lane that returns inside the region must not also resume), and
   * the region entry ``E`` has no predecessors inside ``R`` (no back
     edge re-enters the region except through the call below).

   Growing to the function entry means no *partial* region exists and the
   caller falls back whole-function, exactly as before.

2. :func:`outline_region` moves ``R`` into a fresh scalar helper function
   and replaces it in the caller with a single ``call``:

   * live-ins become scalar parameters (SSA dominance guarantees every
     value used inside ``R`` but defined outside it dominates ``E``);
   * ``psim.lane_num()`` inside the region becomes an explicit ``lane``
     parameter — the caller passes a fresh ``psim.lane_num()`` call whose
     *indexed* shape hands each serialized lane its own index;
   * live-outs — exactly the incoming values of the seam exit's phis that
     flow from region predecessors (SSA dominance: a value defined inside
     a single-entry dominator subtree cannot have non-phi uses outside
     it) — travel through per-call out-slot allocas: the helper stores
     them in dedicated exit stubs, the caller reloads after the call.

The **seam mask contract** then falls out of machinery the vectorizer
already has: a call to a scalar ``Function`` inside an SPMD body is
serialized one *active* lane at a time (``_serialize_call``), with uniform
arguments staying scalar and indexed/varying arguments extracted per lane.
A lane executes the region iff it is active at ``E`` — which is the only
way into a single-entry region — and the out-slot allocas are gang-private
(their address shape is *indexed*), so inactive lanes neither run region
code nor touch region state.  Cross-lane ``psim.*`` intrinsics inside the
region have no one-lane-at-a-time schedule, so they raise
:class:`RegionError` and force whole-function fallback, as today.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..diagnostics import CompileError
from ..ir.cfg import DominatorTree
from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function, Module
from ..ir.types import I64, VOID, FunctionType, PointerType
from ..ir.values import Argument, Value
from ..ir.verifier import verify_function
from ..passes.clone import clone_blocks
from .scalarize import cross_lane_blocker

__all__ = [
    "RegionError",
    "FallbackRegion",
    "OutlineResult",
    "compute_fallback_region",
    "outline_region",
]


class RegionError(CompileError):
    """No partial-fallback region exists around the failing block."""

    default_stage = "vectorizer"


@dataclass
class FallbackRegion:
    """A single-entry, single-exit-target block set eligible for outlining."""

    entry: BasicBlock
    #: entry first, remaining blocks in function block order.
    blocks: List[BasicBlock]
    block_set: Set[BasicBlock]
    #: the unique successor outside the region; None for pure tail regions
    #: (every path inside ends in ``ret``).
    exit: Optional[BasicBlock]


@dataclass
class OutlineResult:
    """What :func:`outline_region` did, for telemetry and cleanup."""

    function: Function  # the outlined scalar helper, added to the module
    entry: str
    blocks: List[str]
    blocks_scalarized: int
    instrs_scalarized: int


def _subtree(dt: DominatorTree, root: BasicBlock) -> Set[BasicBlock]:
    blocks = {root}
    stack = [root]
    while stack:
        for child in dt.children[stack.pop()]:
            if child not in blocks:
                blocks.add(child)
                stack.append(child)
    return blocks


def compute_fallback_region(function: Function, block_name: str) -> FallbackRegion:
    """The minimal outlinable single-entry region containing ``block_name``.

    Raises :class:`RegionError` when the region would swallow the whole
    function (the failing block is only separable at the entry) or when it
    contains a cross-lane intrinsic (no sequential per-lane schedule).
    """
    target = next((b for b in function.blocks if b.name == block_name), None)
    if target is None:
        raise RegionError(
            f"@{function.name} has no block named {block_name}",
            function=function.name,
            detail={"block": block_name},
        )
    dt = DominatorTree(function)
    if target not in dt.idom:
        raise RegionError(
            f"block {block_name} is unreachable in @{function.name}",
            function=function.name,
            block=block_name,
        )

    entry = target
    while True:
        if entry is function.entry:
            raise RegionError(
                f"fallback region around block {block_name} grows to the "
                f"whole body of @{function.name}",
                function=function.name,
                block=block_name,
            )
        block_set = _subtree(dt, entry)
        external: Set[BasicBlock] = set()
        has_ret = False
        for block in block_set:
            term = block.terminator
            if term is not None and term.opcode == "ret":
                has_ret = True
            for succ in block.successors:
                if succ not in block_set:
                    external.add(succ)
        entered_from_inside = any(p in block_set for p in entry.predecessors)
        if len(external) <= 1 and not (has_ret and external) and not entered_from_inside:
            break
        entry = dt.idom[entry]

    ordered = [entry] + [b for b in function.blocks if b in block_set and b is not entry]
    blocker = cross_lane_blocker(
        instr for block in ordered for instr in block.instructions
    )
    if blocker is not None:
        raise RegionError(
            f"fallback region around block {block_name} contains cross-lane "
            f"intrinsic {blocker}: no sequential per-lane schedule",
            function=function.name,
            block=block_name,
            detail={"intrinsic": blocker},
        )
    return FallbackRegion(
        entry=entry,
        blocks=ordered,
        block_set=block_set,
        exit=next(iter(external)) if external else None,
    )


def outline_region(
    module: Module, function: Function, region: FallbackRegion, index: int
) -> OutlineResult:
    """Move ``region`` out of ``function`` into a scalar helper function.

    The region blocks are replaced in ``function`` by a single *seam*
    block (the renamed region entry, its phis preserved) that calls the
    helper once and branches to the region's exit target.  The helper is
    added to ``module`` with ``noinline`` (the vectorizer must serialize
    the call, not re-absorb the body) and a ``parsimony_partial_region``
    attribute the verifier checks seam invariants against.  The helper
    name deliberately avoids the ``.psim`` marker so the driver's
    post-vectorize cleanup does not inline it into the gang loop.
    """
    entry, block_set, exit_block = region.entry, region.block_set, region.exit
    ordered = region.blocks
    entry_phis = entry.phis()

    # ---- pre-scan: region defs, live-ins, lane usage --------------------
    region_defs: Set[Value] = set()
    for block in ordered:
        for instr in block.instructions:
            region_defs.add(instr)
    for phi in entry_phis:
        region_defs.discard(phi)  # entry phis stay in the caller seam

    live_ins: List[Value] = []
    seen: Set[Value] = set()

    def note_live_in(value: Value) -> None:
        if not isinstance(value, (Instruction, Argument)):
            return  # constants/undef/blocks/callees need no parameter
        if value in region_defs or value in seen:
            return
        seen.add(value)
        live_ins.append(value)

    lane_external = None
    for block in ordered:
        instrs = block.non_phi_instructions() if block is entry else block.instructions
        for instr in instrs:
            if (
                instr.opcode == "call"
                and getattr(instr.operands[0], "name", "") == "psim.lane_num"
            ):
                lane_external = instr.operands[0]
            for op in instr.operands:
                note_live_in(op)

    exit_phis: List[Instruction] = exit_block.phis() if exit_block is not None else []
    for phi in exit_phis:
        for value, pred in phi.phi_incoming():
            if pred in block_set:
                note_live_in(value)  # exit stubs must be able to store it

    # ---- helper signature ----------------------------------------------
    param_types = [v.type for v in live_ins]
    param_names = [v.name or "v" for v in live_ins]
    if lane_external is not None:
        lane_index = len(param_types)
        param_types.append(I64)
        param_names.append("lane")
    slot_base = len(param_types)
    for phi in exit_phis:
        param_types.append(PointerType(phi.type))
        param_names.append(f"out.{phi.name or 'slot'}")

    base = function.name.replace(".", "_")  # no ".psim": cleanup must not inline
    while f"{base}.region{index}" in module:
        index += 1
    helper = Function(
        f"{base}.region{index}", FunctionType(VOID, tuple(param_types)), param_names
    )
    helper.attrs["noinline"] = True
    helper.attrs["parsimony_partial_region"] = {
        "parent": function.name,
        "entry": entry.name,
        "blocks": [b.name for b in ordered],
    }

    lane_arg = helper.args[lane_index] if lane_external is not None else None
    slot_args = list(helper.args[slot_base:])

    # ---- clone the region body into the helper --------------------------
    value_map: Dict[Value, Value] = dict(zip(live_ins, helper.args))
    # Entry phis stay behind: hide them from the cloner so region uses of
    # them resolve to the matching live-in parameters instead of clones.
    saved_entry_instructions = entry.instructions
    entry.instructions = entry.non_phi_instructions()
    try:
        block_map = clone_blocks(ordered, helper, value_map)
    finally:
        entry.instructions = saved_entry_instructions

    # Region edges into the exit target become stores + ret via fresh exit
    # stubs (one per region predecessor of the exit).
    if exit_block is not None:
        for source, cloned in block_map.items():
            term = cloned.terminator
            if term is None or exit_block not in term.operands:
                continue
            stub = helper.add_block("region.exit")
            for slot_arg, phi in zip(slot_args, exit_phis):
                value = phi.phi_value_for(source)
                stub.append(
                    Instruction("store", VOID, [value_map.get(value, value), slot_arg])
                )
            stub.append(Instruction("ret", VOID, []))
            for idx, op in enumerate(term.operands):
                if op is exit_block:
                    term.set_operand(idx, stub)

    # psim.lane_num() inside the region becomes the explicit lane argument.
    for instr in list(helper.instructions()):
        if (
            instr.opcode == "call"
            and getattr(instr.operands[0], "name", "") == "psim.lane_num"
        ):
            instr.replace_all_uses_with(lane_arg)
            instr.erase()

    instrs_scalarized = sum(len(b.instructions) for b in helper.blocks)
    verify_function(helper)
    # Register only once the helper is complete and verified, so a failure
    # above leaves the module (and the caller, untouched so far) clean.
    module.add_function(helper)

    # ---- rebuild the caller around a single seam call -------------------
    # Out-slots live in the caller entry; the seam call makes them escape,
    # which is exactly what gives them the gang-private blocked layout.
    slot_allocas = []
    for phi in exit_phis:
        slot = Instruction(
            "alloca",
            PointerType(phi.type),
            [],
            function.unique_name("region.slot"),
            {"count": 1},
        )
        function.entry.insert(0, slot)
        slot_allocas.append(slot)

    call_args: List[Value] = list(live_ins)
    lane_call = None
    if lane_external is not None:
        lane_call = Instruction(
            "call", I64, [lane_external], function.unique_name("region.lane")
        )
        call_args.append(lane_call)
    call_args.extend(slot_allocas)
    seam_call = Instruction("call", VOID, [helper] + call_args)
    reloads = [
        Instruction("load", phi.type, [slot], function.unique_name("region.out"))
        for phi, slot in zip(exit_phis, slot_allocas)
    ]

    # Exit phis: region-predecessor incomings collapse into one incoming
    # from the seam block carrying the reloaded slot value.
    for phi, reload in zip(exit_phis, reloads):
        kept = [(v, p) for v, p in phi.phi_incoming() if p not in block_set]
        phi.drop_operands()
        for value, pred in kept:
            phi.append_operand(value)
            phi.append_operand(pred)
        phi.append_operand(reload)
        phi.append_operand(entry)

    for block in ordered[1:]:
        function.remove_block(block)
    for instr in reversed(entry.non_phi_instructions()):
        instr.erase()  # all uses are gone: region blocks removed, phis rebuilt

    entry.name = function.unique_name("seam")
    if lane_call is not None:
        entry.append(lane_call)
    entry.append(seam_call)
    for reload in reloads:
        entry.append(reload)
    if exit_block is not None:
        entry.append(Instruction("br", VOID, [exit_block]))
    else:
        entry.append(Instruction("ret", VOID, []))  # pure tail region

    return OutlineResult(
        function=helper,
        entry=helper.attrs["parsimony_partial_region"]["entry"],
        blocks=list(helper.attrs["parsimony_partial_region"]["blocks"]),
        blocks_scalarized=len(ordered),
        instrs_scalarized=instrs_scalarized,
    )
