"""Bounded model checking of shape-transformation rules.

The paper verifies its conditional shape transformations with z3 in an
offline phase, then checks only the (cheap) preconditions online during
compilation (§4.2.2).  With no SMT solver available offline here, we
substitute *exhaustive bounded model checking over small bit-vectors*:
every rule identity is checked for **all** valuations at a reduced width
(plus randomized sampling at full width), which is sound for the
bit-vector fragment these rules live in at the checked widths, and gives
the same workflow: a rule must pass ``verify_rule`` before the analysis
may apply it, and the analysis still evaluates each rule's precondition
against the tracked facts before every application.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..diagnostics import CompileError

__all__ = [
    "RuleSpec",
    "verify_rule",
    "CounterExample",
    "SMTError",
    "SMTTimeout",
    "SMTUnavailable",
    "rule_usable",
    "reset_rule_cache",
]


class SMTError(CompileError):
    """The rule-verification layer failed (distinct from a counterexample)."""

    default_stage = "smt"


class SMTTimeout(SMTError):
    """Rule verification exceeded its time budget."""


class SMTUnavailable(SMTError):
    """No verification backend / no such rule is available."""


@dataclass
class CounterExample(Exception):
    """A valuation under which a rule's identity fails."""

    rule: str
    assignment: dict

    def __str__(self) -> str:  # pragma: no cover
        return f"rule {self.rule!r} fails for {self.assignment}"


@dataclass
class RuleSpec:
    """A conditional rewrite over bit-vectors.

    ``variables`` names the free bit-vector variables; ``parameters`` names
    compile-time parameters with explicit candidate values (e.g. shift
    amounts, mask widths).  ``precondition``, ``lhs`` and ``rhs`` all
    receive ``(env, bits)`` where ``env`` maps names to ints; the identity
    is ``precondition ⟹ lhs ≡ rhs (mod 2^bits)``.
    """

    name: str
    variables: Sequence[str]
    lhs: Callable
    rhs: Callable
    precondition: Callable = lambda env, bits: True
    parameters: Callable = lambda bits: [{}]  # yields param dicts


def verify_rule(rule: RuleSpec, bits: int = 6, samples_at: int = 64, samples: int = 4000,
                seed: int = 0, deadline: Optional[float] = None) -> None:
    """Exhaustively check ``rule`` at ``bits`` width, then randomly sample at
    ``samples_at`` width.  Raises :class:`CounterExample` on failure and
    :class:`SMTTimeout` when ``deadline`` (a ``time.monotonic`` instant)
    passes before the check completes."""
    mask = (1 << bits) - 1
    space = range(1 << bits)
    checked = 0
    for params in rule.parameters(bits):
        for values in itertools.product(space, repeat=len(rule.variables)):
            env = dict(zip(rule.variables, values))
            env.update(params)
            _check_one(rule, env, bits, mask)
            checked = _poll_deadline(rule, checked, deadline)

    rng = random.Random(seed)
    mask64 = (1 << samples_at) - 1
    for params in rule.parameters(samples_at):
        for _ in range(samples):
            env = {v: rng.getrandbits(samples_at) for v in rule.variables}
            env.update(params)
            _check_one(rule, env, samples_at, mask64)
            checked = _poll_deadline(rule, checked, deadline)


def _poll_deadline(rule: RuleSpec, checked: int, deadline: Optional[float]) -> int:
    checked += 1
    if deadline is not None and checked % 256 == 0 and time.monotonic() > deadline:
        raise SMTTimeout(
            f"verification of rule {rule.name!r} exceeded its time budget",
            detail={"rule": rule.name},
        )
    return checked


def _check_one(rule: RuleSpec, env: dict, bits: int, mask: int) -> None:
    if not rule.precondition(env, bits):
        return
    lhs = rule.lhs(env, bits) & mask
    rhs = rule.rhs(env, bits) & mask
    if lhs != rhs:
        raise CounterExample(rule.name, dict(env))


# -- online usability gate ----------------------------------------------------------
#
# The shape analysis consults ``rule_usable`` before applying any
# *conditional* transformation rule.  The paper's workflow assumes an
# offline z3 phase that can time out or be absent; the guard maps every
# such failure to "the rule is not usable", so the analysis conservatively
# classifies the value as varying instead of raising.  Verdicts are cached
# per process; fault injection (site ``"smt"``) can force a timeout or an
# unavailable backend, and ``inject()`` resets this cache on exit so
# poisoned verdicts cannot outlive the injection block.

_RULE_STATUS: Dict[str, bool] = {}

#: Quick-probe budget: exhaustive at 4 bits plus a few full-width samples
#: finishes in well under a millisecond per rule; the wall-clock ceiling
#: exists for pathological rules and injected timeouts.
_PROBE_BUDGET_SECONDS = 0.25


def reset_rule_cache() -> None:
    """Drop all cached rule verdicts (tests, fault-injection cleanup)."""
    _RULE_STATUS.clear()


def rule_usable(name: str, budget_seconds: float = _PROBE_BUDGET_SECONDS) -> bool:
    """May the shape analysis apply conditional rule ``name``?

    False when the rule is unknown, its verification times out or is
    unavailable, or a counterexample shows up at probe widths — in every
    case the caller degrades to ``varying`` rather than raising.
    """
    cached = _RULE_STATUS.get(name)
    if cached is not None:
        return cached
    try:
        from .. import faultinject

        faultinject.maybe_fail("smt", name)
        from . import rules as _rules

        rule = _rules.RULES.get(name)
        if rule is None:
            raise SMTUnavailable(
                f"no verified rule named {name!r}", detail={"rule": name}
            )
        verify_rule(
            rule, bits=4, samples_at=64, samples=128,
            deadline=time.monotonic() + budget_seconds,
        )
        usable = True
    except (SMTTimeout, SMTUnavailable, CounterExample):
        usable = False
    _RULE_STATUS[name] = usable
    return usable
