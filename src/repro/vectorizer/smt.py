"""Bounded model checking of shape-transformation rules.

The paper verifies its conditional shape transformations with z3 in an
offline phase, then checks only the (cheap) preconditions online during
compilation (§4.2.2).  With no SMT solver available offline here, we
substitute *exhaustive bounded model checking over small bit-vectors*:
every rule identity is checked for **all** valuations at a reduced width
(plus randomized sampling at full width), which is sound for the
bit-vector fragment these rules live in at the checked widths, and gives
the same workflow: a rule must pass ``verify_rule`` before the analysis
may apply it, and the analysis still evaluates each rule's precondition
against the tracked facts before every application.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = ["RuleSpec", "verify_rule", "CounterExample"]


@dataclass
class CounterExample(Exception):
    """A valuation under which a rule's identity fails."""

    rule: str
    assignment: dict

    def __str__(self) -> str:  # pragma: no cover
        return f"rule {self.rule!r} fails for {self.assignment}"


@dataclass
class RuleSpec:
    """A conditional rewrite over bit-vectors.

    ``variables`` names the free bit-vector variables; ``parameters`` names
    compile-time parameters with explicit candidate values (e.g. shift
    amounts, mask widths).  ``precondition``, ``lhs`` and ``rhs`` all
    receive ``(env, bits)`` where ``env`` maps names to ints; the identity
    is ``precondition ⟹ lhs ≡ rhs (mod 2^bits)``.
    """

    name: str
    variables: Sequence[str]
    lhs: Callable
    rhs: Callable
    precondition: Callable = lambda env, bits: True
    parameters: Callable = lambda bits: [{}]  # yields param dicts


def verify_rule(rule: RuleSpec, bits: int = 6, samples_at: int = 64, samples: int = 4000,
                seed: int = 0) -> None:
    """Exhaustively check ``rule`` at ``bits`` width, then randomly sample at
    ``samples_at`` width.  Raises :class:`CounterExample` on failure."""
    mask = (1 << bits) - 1
    space = range(1 << bits)
    for params in rule.parameters(bits):
        for values in itertools.product(space, repeat=len(rule.variables)):
            env = dict(zip(rule.variables, values))
            env.update(params)
            _check_one(rule, env, bits, mask)

    rng = random.Random(seed)
    mask64 = (1 << samples_at) - 1
    for params in rule.parameters(samples_at):
        for _ in range(samples):
            env = {v: rng.getrandbits(samples_at) for v in rule.variables}
            env.update(params)
            _check_one(rule, env, samples_at, mask64)


def _check_one(rule: RuleSpec, env: dict, bits: int, mask: int) -> None:
    if not rule.precondition(env, bits):
        return
    lhs = rule.lhs(env, bits) & mask
    rhs = rule.rhs(env, bits) & mask
    if lhs != rhs:
        raise CounterExample(rule.name, dict(env))
