"""The conditional shape-transformation rule set (§4.2.2).

Each rule states when an operation on an *indexed* value ``base + off``
(scalar base, compile-time per-lane offset) can itself be re-interpreted
as indexed.  Unconditional rules (add, sub, mul/shl by anything, trunc)
hold by modular arithmetic; the conditional ones carry preconditions that
the shape analysis checks against the facts lattice online.

Every rule here doubles as a :class:`~repro.vectorizer.smt.RuleSpec`, and
the test suite model-checks all of them (the reproduction of the paper's
offline z3 verification phase).
"""

from __future__ import annotations

from typing import Dict, List

from .smt import RuleSpec

__all__ = ["RULES", "rule"]

RULES: Dict[str, RuleSpec] = {}


def rule(spec: RuleSpec) -> RuleSpec:
    RULES[spec.name] = spec
    return spec


def _mask(bits: int) -> int:
    return (1 << bits) - 1


def _shift_params(bits: int) -> List[dict]:
    return [{"k": k} for k in range(bits)]


# -- unconditional rules (pure modular arithmetic) ---------------------------------

rule(RuleSpec(
    name="add_indexed",
    variables=("b1", "o1", "b2", "o2"),
    lhs=lambda e, bits: (e["b1"] + e["o1"]) + (e["b2"] + e["o2"]),
    rhs=lambda e, bits: (e["b1"] + e["b2"]) + (e["o1"] + e["o2"]),
))

rule(RuleSpec(
    name="sub_indexed",
    variables=("b1", "o1", "b2", "o2"),
    lhs=lambda e, bits: (e["b1"] + e["o1"]) - (e["b2"] + e["o2"]),
    rhs=lambda e, bits: (e["b1"] - e["b2"]) + (e["o1"] - e["o2"]),
))

rule(RuleSpec(
    name="mul_const_offset_scale",
    variables=("b", "o", "c"),
    lhs=lambda e, bits: (e["b"] + e["o"]) * e["c"],
    rhs=lambda e, bits: e["b"] * e["c"] + e["o"] * e["c"],
))

rule(RuleSpec(
    name="shl_const",
    variables=("b", "o"),
    parameters=_shift_params,
    lhs=lambda e, bits: (e["b"] + e["o"]) << e["k"],
    rhs=lambda e, bits: (e["b"] << e["k"]) + (e["o"] << e["k"]),
))

rule(RuleSpec(
    name="trunc",
    variables=("b", "o"),
    parameters=lambda bits: [{"k": k} for k in range(1, bits + 1)],
    lhs=lambda e, bits: ((e["b"] + e["o"]) & _mask(bits)) & _mask(e["k"]),
    rhs=lambda e, bits: ((e["b"] & _mask(e["k"])) + e["o"]) & _mask(e["k"]),
))


# -- conditional rules (the paper's z3-checked cases) -------------------------------

rule(RuleSpec(
    # (b + o) & (2^k - 1) == (b & (2^k - 1)) + o,  when  b ≡ 0 (mod 2^k)
    # and 0 <= o < 2^k.  This is the paper's logical-AND example.
    name="and_low_mask",
    variables=("b", "o"),
    parameters=_shift_params,
    precondition=lambda e, bits: (
        e["b"] % (1 << e["k"]) == 0 and 0 <= e["o"] < (1 << e["k"])
    ),
    lhs=lambda e, bits: ((e["b"] + e["o"]) & _mask(bits)) & _mask(e["k"]),
    rhs=lambda e, bits: (e["b"] & _mask(e["k"])) + e["o"],
))

rule(RuleSpec(
    # (b + o) ^ m == b + (o ^ m),  when  m < 2^k, b ≡ 0 (mod 2^k), and
    # 0 <= o < 2^k: the xor only permutes bits below the base's alignment.
    # Covers lane-swizzle patterns like `i ^ 1` (byte reordering kernels).
    name="xor_low_mask",
    variables=("b", "o"),
    parameters=lambda bits: [
        {"k": k, "m": m} for k in range(1, bits) for m in ((1 << k) - 1, 1, 1 << (k - 1))
    ],
    # The offsets themselves may be arbitrary non-negative values: adding an
    # aligned base never changes the low k bits, so the xor still only
    # rewrites the offset's low bits.
    precondition=lambda e, bits: (
        e["m"] < (1 << e["k"]) and e["b"] % (1 << e["k"]) == 0
    ),
    lhs=lambda e, bits: ((e["b"] + e["o"]) & _mask(bits)) ^ e["m"],
    rhs=lambda e, bits: e["b"] + (e["o"] ^ e["m"]),
))

rule(RuleSpec(
    # (b + o) >> k == (b >> k) + (o >> k),  when  b ≡ 0 (mod 2^k),
    # o ≡ 0 (mod 2^k) (no bits cross the shifted-out boundary), and
    # b + o does not wrap (range fact).
    name="lshr_const_aligned",
    variables=("b", "o"),
    parameters=_shift_params,
    precondition=lambda e, bits: (
        e["b"] % (1 << e["k"]) == 0
        and e["o"] % (1 << e["k"]) == 0
        and e["b"] + e["o"] <= _mask(bits)
    ),
    lhs=lambda e, bits: ((e["b"] + e["o"]) & _mask(bits)) >> e["k"],
    rhs=lambda e, bits: (e["b"] >> e["k"]) + (e["o"] >> e["k"]),
))

rule(RuleSpec(
    # (b + o) >> k == b >> k  (uniform result),  when  b ≡ 0 (mod 2^k)
    # and 0 <= o < 2^k: the whole offset disappears below the shift.
    name="lshr_const_absorb",
    variables=("b", "o"),
    parameters=_shift_params,
    precondition=lambda e, bits: (
        e["b"] % (1 << e["k"]) == 0
        and 0 <= e["o"] < (1 << e["k"])
        and e["b"] + e["o"] <= _mask(bits)
    ),
    lhs=lambda e, bits: ((e["b"] + e["o"]) & _mask(bits)) >> e["k"],
    rhs=lambda e, bits: e["b"] >> e["k"],
))

rule(RuleSpec(
    # (b + o) / d == b / d + o / d,  when  b ≡ 0 (mod d), o >= 0, and
    # b + o does not wrap (range fact).
    name="udiv_const_aligned",
    variables=("b", "o"),
    parameters=lambda bits: [{"d": d} for d in (1, 2, 3, 4, 5, 8, 16)],
    precondition=lambda e, bits: (
        e["b"] % e["d"] == 0 and e["b"] + e["o"] <= _mask(bits)
    ),
    lhs=lambda e, bits: (e["b"] + e["o"]) // e["d"],
    rhs=lambda e, bits: e["b"] // e["d"] + e["o"] // e["d"],
))

rule(RuleSpec(
    # zext(b + o) == zext(b) + o,  when the source-width sum b + o does not
    # wrap (range fact on the base plus bounded offsets).
    name="zext_no_wrap",
    variables=("b", "o"),
    parameters=lambda bits: [{"k": k} for k in range(2, bits)],
    precondition=lambda e, bits: (
        e["b"] <= _mask(e["k"]) and e["o"] <= _mask(e["k"])
        and e["b"] + e["o"] <= _mask(e["k"])
    ),
    # lhs: compute in k bits (value lives in k-bit domain), then widen.
    lhs=lambda e, bits: (e["b"] + e["o"]) & _mask(e["k"]),
    rhs=lambda e, bits: (e["b"] & _mask(e["k"])) + e["o"],
))

rule(RuleSpec(
    # sext(b + o) == sext(b) + o for k-bit signed values, when b + o stays
    # within the signed k-bit range (the "nsw" justification for signed
    # loop counters; PsimC signed overflow is UB like C).
    name="sext_no_signed_wrap",
    variables=("b", "o"),
    parameters=lambda bits: [{"k": k} for k in range(2, bits)],
    precondition=lambda e, bits: _sext_pre(e, bits),
    lhs=lambda e, bits: _sext(( _signed(e["b"], e["k"]) + _signed(e["o"], e["k"]) ), e["k"], bits),
    rhs=lambda e, bits: (_sext(_signed(e["b"], e["k"]), e["k"], bits) + _signed(e["o"], e["k"])),
))


def _signed(v: int, k: int) -> int:
    v &= _mask(k)
    return v - (1 << k) if v >= (1 << (k - 1)) else v


def _sext_pre(e: dict, bits: int) -> bool:
    sb, so = _signed(e["b"], e["k"]), _signed(e["o"], e["k"])
    lo, hi = -(1 << (e["k"] - 1)), (1 << (e["k"] - 1)) - 1
    return lo <= sb + so <= hi


def _sext(v: int, k: int, bits: int) -> int:
    return v & _mask(bits)
