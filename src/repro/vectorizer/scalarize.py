"""Scalar fallback for SPMD functions the vectorizer cannot handle.

The paper's integration story (§4.2) demands that Parsimony behave like
any other optimization pass: an unsupported construct must *degrade*, not
fail the build.  This module supplies the degradation target: an SPMD
region function is rewritten **in place** into a sequential lane loop —

    for (lane = 0; lane < gang_size; ++lane) { <original body> }

with every ``psim.lane_num()`` call replaced by the loop induction
variable.  Sequential lane order is a legal schedule of the SPMD model as
long as the body performs no cross-lane communication, so the transform
is restricted to bodies free of horizontal ``psim.*`` intrinsics
(reductions, shuffles, broadcasts, ``gang_sync``): those have no correct
one-lane-at-a-time schedule and raise :class:`ScalarizeError` instead —
the caller then surfaces a hard :class:`~repro.diagnostics.CompileError`.

The result is an ordinary scalar function (``spmd`` cleared), so the
driver's ``post_vectorize_cleanup`` re-inlines it into its gang loop just
like a vectorized region, and execution matches ``compile_scalar``
bit-for-bit (same scalar ops, same order per element).
"""

from __future__ import annotations

from typing import Optional

from ..diagnostics import CompileError
from ..ir.builder import IRBuilder
from ..ir.module import Function
from ..ir.types import I64
from ..ir.values import Constant
from ..ir.verifier import verify_function

__all__ = [
    "ScalarizeError",
    "cross_lane_blocker",
    "scalarization_blocker",
    "scalarize_spmd_function",
]

#: ``psim.*`` intrinsics with a per-lane meaning — safe under a lane loop.
_LANE_LOCAL_PSIM = frozenset(["psim.lane_num"])


class ScalarizeError(CompileError):
    """The SPMD body has no sequential per-lane schedule."""

    default_stage = "scalarize"


def cross_lane_blocker(instructions) -> Optional[str]:
    """The name of the first cross-lane ``psim.*`` intrinsic in the iterable
    of instructions, or None when one-lane-at-a-time execution is a legal
    schedule.  Shared by the whole-function lane loop below and the
    region-granular outliner (:mod:`.regions`)."""
    for instr in instructions:
        if instr.opcode != "call":
            continue
        callee = getattr(instr.operands[0], "name", "")
        if callee.startswith("psim.") and callee not in _LANE_LOCAL_PSIM:
            return callee
    return None


def scalarization_blocker(function: Function) -> Optional[str]:
    """The name of the first cross-lane ``psim.*`` intrinsic in ``function``,
    or None when a sequential lane loop is a legal schedule."""
    return cross_lane_blocker(function.instructions())


def scalarize_spmd_function(function: Function) -> Function:
    """Rewrite ``function`` (in place) into a sequential lane loop.

    Clears the SPMD annotation on success so downstream stages treat the
    result as ordinary scalar code.  Raises :class:`ScalarizeError` when
    the body contains a cross-lane intrinsic.
    """
    spmd = function.spmd
    if spmd is None:
        raise ScalarizeError(
            f"@{function.name} carries no SPMD annotation", function=function.name
        )
    blocker = scalarization_blocker(function)
    if blocker is not None:
        raise ScalarizeError(
            f"cannot scalarize @{function.name}: cross-lane intrinsic "
            f"{blocker} has no sequential per-lane schedule",
            function=function.name,
            detail={"intrinsic": blocker},
        )
    if not function.return_type.is_void:
        raise ScalarizeError(
            f"cannot scalarize @{function.name}: SPMD regions return void",
            function=function.name,
        )

    body_blocks = list(function.blocks)
    body_entry = body_blocks[0]

    # New skeleton around the existing body:  entry -> header -> body...
    # -> latch -> (header | exit).  The body blocks are re-attached as-is;
    # their internal SSA and control flow are untouched.
    function.blocks = []
    b = IRBuilder(function)
    entry = b.new_block("lane.entry")
    header = b.new_block("lane.header")
    function.blocks.extend(body_blocks)
    latch = b.new_block("lane.latch")
    exit_block = b.new_block("lane.exit")

    b.position_at_end(entry)
    b.br(header)

    b.position_at_end(header)
    lane = b.phi(I64, "lane")
    lane.append_operand(Constant(I64, 0))
    lane.append_operand(entry)
    b.br(body_entry)

    b.position_at_end(latch)
    lane_next = b.add(lane, Constant(I64, 1), "lane.next")
    done = b.icmp("eq", lane_next, Constant(I64, spmd.gang_size), "lane.done")
    b.condbr(done, exit_block, header)
    lane.append_operand(lane_next)
    lane.append_operand(latch)

    b.position_at_end(exit_block)
    b.ret()

    # Rewire the body: every return jumps to the latch instead, and every
    # psim.lane_num() becomes the induction variable.
    for block in body_blocks:
        term = block.terminator
        if term is not None and term.opcode == "ret":
            term.erase()
            b.position_at_end(block)
            b.br(latch)
        for instr in list(block.instructions):
            if (
                instr.opcode == "call"
                and getattr(instr.operands[0], "name", "") == "psim.lane_num"
            ):
                instr.replace_all_uses_with(lane)
                instr.erase()

    function.spmd = None
    verify_function(function)
    return function
