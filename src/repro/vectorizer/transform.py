"""The Parsimony IR-to-IR vectorization pass (§4.2).

Transforms an SPMD-annotated scalar function into a function that executes
all ``G`` gang lanes in SIMD fashion:

* **control flow** — forward branches are linearized: each scalar block
  gets an entry/active mask computed from its predecessors' masks and
  branch conditions; loops keep a real back edge driven by a *live* mask,
  with one accumulated mask per exit edge and per-value "trackers" that
  snapshot loop-carried values at the iteration each lane exits (§4.2.1).
* **uniform scalarization** — values the shape analysis proves indexed
  keep scalar bases; uniform joins use scalar selects driven by scalar
  path predicates, so uniform work never widens (§4.2.2).
* **instruction transformation** — varying arithmetic widens to vectors;
  memory ops pick scalar / packed / packed+shuffle (window ≤ 4× gang) /
  gather-scatter forms from their *address* shape; forward-join phis turn
  into masked selects; ``psim.*`` horizontal intrinsics lower to vector
  shuffles/reductions; non-inlined scalar calls and atomics serialize per
  active lane (§4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..ir import (
    I1,
    I64,
    Constant,
    Function,
    IRBuilder,
    Instruction,
    Module,
    UndefValue,
    Value,
)
from .. import faultinject
from ..diagnostics import CompileError, ReproError, attach_location
from ..ir.cfg import DominatorTree, Loop, find_loops, reverse_postorder
from ..ir.instructions import CAST_OPS, FLOAT_BINOPS, INT_BINOPS, UNARY_OPS
from ..ir.module import BasicBlock, ExternalFunction
from ..ir.types import FloatType, IntType, PointerType, Type, VectorType
from ..runtime.mathlib import SLEEF, vector_math_external
from .shape import Shape
from .shapes import ShapeAnalysis

__all__ = ["VectorizeConfig", "Vectorizer", "VectorizeError"]


class VectorizeError(CompileError):
    """The function cannot be vectorized (unsupported construct)."""

    default_stage = "vectorizer"


@dataclass
class VectorizeConfig:
    """Tunables of the Parsimony pass; defaults mirror the paper's setup."""

    #: Which vector math library the pass targets (§6: SLEEF for Parsimony).
    math_flavour: str = SLEEF
    #: Bounded-stride window for packed+shuffle memory (×gang size, §4.2.3).
    max_stride_window: int = 4
    #: Ablation switch: disable shape analysis (everything becomes varying).
    enable_shape_analysis: bool = True
    #: Treat PsimC signed overflow as UB (enables sext shape propagation).
    assume_nsw: bool = True


@dataclass
class _LoopEmission:
    """Live codegen state for one masked loop being emitted."""

    loop: Loop
    divergent: bool
    header_block: BasicBlock  # in the output function
    live_phi: Instruction
    acc_vec: Dict[Tuple[BasicBlock, BasicBlock], Value] = field(default_factory=dict)
    acc_sc: Dict[Tuple[BasicBlock, BasicBlock], Value] = field(default_factory=dict)
    acc_vec_phi: Dict = field(default_factory=dict)
    acc_sc_phi: Dict = field(default_factory=dict)
    trackers: Dict[Value, Value] = field(default_factory=dict)
    tracker_phis: Dict[Value, Instruction] = field(default_factory=dict)


class Vectorizer:
    """Vectorizes one SPMD-annotated function into a new function."""

    def __init__(self, module: Module, sfunc: Function, analysis: ShapeAnalysis,
                 config: Optional[VectorizeConfig] = None):
        if sfunc.spmd is None:
            raise VectorizeError(f"@{sfunc.name} carries no SPMD annotation")
        if not sfunc.return_type.is_void:
            raise VectorizeError("SPMD region functions must return void")
        self.module = module
        self.sf = sfunc
        self.config = config or VectorizeConfig()
        self.gang = sfunc.spmd.gang_size
        self.shapes = analysis
        self.warnings: List[str] = []
        #: Memory-form selections ("load.packed", "store.scatter", ...) made
        #: while emitting this function, for telemetry (§4.2.2-4.2.3).
        self.memform_counts: Dict[str, int] = {}

        self.mask_type = VectorType(I1, self.gang)
        self.rpo = reverse_postorder(sfunc)
        self.dt = DominatorTree(sfunc)
        self.loops = find_loops(sfunc, self.dt)
        self._loop_of: Dict[BasicBlock, Optional[Loop]] = {}
        for block in self.rpo:
            innermost = None
            for loop in self.loops:
                if block in loop.blocks:
                    if innermost is None or len(loop.blocks) < len(innermost.blocks):
                        innermost = loop
            self._loop_of[block] = innermost

        # Output state.
        self.vf = Function(sfunc.name + ".simd", sfunc.ftype, [a.name for a in sfunc.args])
        self.b = IRBuilder(self.vf)
        self.vmap: Dict[Value, Value] = dict(zip(sfunc.args, self.vf.args))
        self.vecmap: Dict[Value, Value] = {}
        self.block_vec: Dict[BasicBlock, Optional[Value]] = {}
        self.block_sc: Dict[BasicBlock, Optional[Value]] = {}
        self.edge_vec: Dict[Tuple[BasicBlock, BasicBlock], Optional[Value]] = {}
        self.edge_sc: Dict[Tuple[BasicBlock, BasicBlock], Optional[Value]] = {}
        self._loop_stack: List[_LoopEmission] = []
        self._saw_ret = False
        # Redundant-load elimination for the linearized region: loads of the
        # same scalar address under a subsumed mask reuse the earlier vector
        # (linearized code re-loads per divergent path otherwise).  Any
        # store/atomic/call or loop boundary clears it.
        self._mem_cache: Dict[Value, Tuple[Optional[Value], Value]] = {}

    # ==================================================================== driver

    def run(self) -> Function:
        entry = self.b.new_block("entry")
        self.b.position_at_end(entry)
        items = self._region_items(None)
        # Top region: every lane of the gang starts active (the partial/tail
        # variant's thread guard is ordinary divergent control flow inside).
        first = items[0]
        if not isinstance(first, BasicBlock):
            raise VectorizeError("function entry inside a loop")
        self.block_vec[first] = None  # None = all-true
        self.block_sc[first] = Constant(I1, 1)
        self._emit_items(items)
        if not self._saw_ret:
            raise VectorizeError("no return reached in SPMD function")
        self.b.ret()
        return self.vf

    def _region_items(self, loop: Optional[Loop]) -> List:
        items: List = []
        seen_loops: Set[Loop] = set()
        blocks = loop.blocks if loop is not None else set(self.rpo)
        for block in self.rpo:
            if block not in blocks:
                continue
            inner = self._loop_of[block]
            if inner is loop:
                items.append(block)
            else:
                # find the child of `loop` containing this block
                walk = inner
                while walk is not None and walk.parent is not loop:
                    walk = walk.parent
                if walk is not None and walk not in seen_loops:
                    seen_loops.add(walk)
                    items.append(walk)
        return items

    def _emit_items(self, items: List) -> None:
        for item in items:
            if isinstance(item, BasicBlock):
                self._emit_block(item)
            else:
                self._emit_loop(item)

    # ==================================================================== masks

    def _mask_value(self, mask: Optional[Value]) -> Value:
        if mask is None:
            return Constant(self.mask_type, [1] * self.gang)
        return mask

    def _and_vec(self, a: Optional[Value], b: Optional[Value]) -> Optional[Value]:
        if a is None:
            return b
        if b is None:
            return a
        return self.b.and_(a, b, "mask")

    def _or_vec(self, a: Optional[Value], b: Optional[Value]) -> Optional[Value]:
        if a is None or b is None:
            return None
        return self.b.or_(a, b, "mask")

    def _not_vec(self, m: Optional[Value]) -> Value:
        if m is None:
            return Constant(self.mask_type, [0] * self.gang)
        return self.b.not_(m, "nmask")

    def _broadcast_bool(self, scalar: Value) -> Value:
        if isinstance(scalar, Constant):
            return Constant(self.mask_type, [scalar.value] * self.gang)
        return self.b.broadcast(scalar, self.gang, "bmask")

    def _and_sc(self, a: Optional[Value], b: Optional[Value]) -> Optional[Value]:
        if a is None or b is None:
            return None
        if isinstance(a, Constant) and a.value == 1:
            return b
        if isinstance(b, Constant) and b.value == 1:
            return a
        return self.b.and_(a, b, "sc")

    def _or_sc(self, a: Optional[Value], b: Optional[Value]) -> Optional[Value]:
        if a is None or b is None:
            return None
        if isinstance(a, Constant):
            return b if a.value == 0 else a
        if isinstance(b, Constant):
            return a if b.value == 0 else b
        return self.b.or_(a, b, "sc")

    # ==================================================================== blocks

    def _incoming_forward_edges(self, block: BasicBlock):
        """(pred, edge-key) pairs already emitted (forward edges only)."""
        edges = []
        for pred in block.predecessors:
            key = (pred, block)
            if key in self.edge_vec or key in self.edge_sc:
                edges.append((pred, key))
        return edges

    def _emit_block(self, block: BasicBlock) -> None:
        try:
            faultinject.maybe_fail(
                "vectorize_block", f"{self.sf.name}:{block.name}"
            )
            self._emit_block_body(block)
        except ReproError as exc:
            # Block provenance feeds the region-granular fallback planner
            # (repro.vectorizer.regions): it must know *which scalar block*
            # defeated the pass to outline the minimal region around it.
            attach_location(exc, function=self.sf.name, block=block.name)
            raise

    def _emit_block_body(self, block: BasicBlock) -> None:
        # Compute this block's active mask from already-emitted edges.
        if block not in self.block_vec:
            edges = self._incoming_forward_edges(block)
            if not edges:
                raise VectorizeError(f"block {block.name} has no emitted incoming edges")
            vec: Optional[Value] = None
            sc: Optional[Value] = None
            for i, (_pred, key) in enumerate(edges):
                evec = self.edge_vec.get(key, None)
                esc = self.edge_sc.get(key)
                if i == 0:
                    vec, sc = evec, esc
                else:
                    vec = None if (vec is None or evec is None) else self.b.or_(vec, evec, "mask")
                    sc = self._or_sc_join(sc, esc)
            self.block_vec[block] = vec
            self.block_sc[block] = sc

        mask = self.block_vec[block]
        self._emit_phis(block)
        for instr in block.non_phi_instructions():
            try:
                if instr.is_terminator:
                    self._emit_terminator(block, instr, mask)
                else:
                    self._emit_instruction(instr, mask)
            except ReproError as exc:
                attach_location(exc, instruction=instr.name or instr.opcode)
                raise

    def _or_sc_join(self, a: Optional[Value], b: Optional[Value]) -> Optional[Value]:
        if a is None or b is None:
            return None
        if isinstance(a, Constant) and a.value == 0:
            return b
        if isinstance(b, Constant) and b.value == 0:
            return a
        return self.b.or_(a, b, "sc")

    def _emit_phis(self, block: BasicBlock) -> None:
        phis = block.phis()
        if not phis:
            return
        edges = self._incoming_forward_edges(block)
        for phi in phis:
            if phi in self.vmap or phi in self.vecmap:
                continue  # loop-header phi, already built by _emit_loop
            incoming = {b: v for v, b in phi.phi_incoming()}
            shape = self.shapes.shape_of(phi)
            if shape.is_indexed:
                result = None
                for pred, key in edges:
                    value = self._base_of(incoming[pred])
                    if result is None:
                        result = value
                    else:
                        sc = self.edge_sc.get(key)
                        if sc is None:
                            raise VectorizeError(
                                f"uniform phi %{phi.name} under divergent control"
                            )
                        result = self.b.select(sc, value, result, phi.name)
                self.vmap[phi] = result
            else:
                result = None
                for pred, key in edges:
                    value = self._materialize(incoming[pred])
                    evec = self.edge_vec.get(key)
                    if result is None or evec is None:
                        result = value
                    else:
                        result = self.b.select(evec, value, result, phi.name)
                self.vecmap[phi] = result

    def _emit_terminator(self, block: BasicBlock, term: Instruction, mask) -> None:
        if term.opcode == "ret":
            self._saw_ret = True
            return
        if term.opcode == "br":
            target = term.operands[0]
            self._record_edge(block, target, mask, self.block_sc[block])
            return
        if term.opcode == "condbr":
            cond, then, els = term.operands
            cshape = self.shapes.shape_of(cond)
            sc = self.block_sc[block]
            if cshape.is_uniform:
                c = self._base_of(cond)
                cvec = self._broadcast_bool(c)
                notc = self.b.xor(c, Constant(I1, 1), "notc")
                self._record_edge(block, then, self._and_vec(mask, cvec), self._and_sc(sc, c))
                self._record_edge(
                    block, els, self._and_vec(mask, self._broadcast_bool(notc)),
                    self._and_sc(sc, notc),
                )
            else:
                # Scalar predicates track only the *uniform* component of
                # control: a varying branch leaves them unchanged, so that a
                # uniform-shaped phi nested under divergent control can still
                # resolve with scalar selects (its value is uniform among the
                # lanes that can observe it).
                cm = self._materialize(cond)
                self._record_edge(block, then, self._and_vec(mask, cm), sc)
                self._record_edge(block, els, self._and_vec(mask, self._not_vec(cm)), sc)
            return
        if term.opcode == "unreachable":
            return
        raise VectorizeError(f"unsupported terminator {term.opcode}")

    def _record_edge(self, pred: BasicBlock, succ: BasicBlock, vec, sc) -> None:
        key = (pred, succ)
        self.edge_vec[key] = vec
        self.edge_sc[key] = sc
        # Edge leaving a loop currently being emitted: accumulate its exit
        # mask and snapshot trackers for lanes leaving now.
        for emission in reversed(self._loop_stack):
            if pred in emission.loop.blocks and succ not in emission.loop.blocks:
                self._accumulate_exit(emission, key, vec, sc)
                break

    def _accumulate_exit(self, emission: _LoopEmission, key, vec, sc) -> None:
        emission.acc_vec[key] = self.b.or_(
            emission.acc_vec[key], self._mask_value(vec), "exitmask"
        )
        if not emission.divergent and key in emission.acc_sc and sc is not None:
            emission.acc_sc[key] = self._or_sc(emission.acc_sc[key], sc)
        # Trackers: lanes exiting here carry their current values out.
        pred = key[0]
        for value in emission.trackers:
            def_block = value.parent if isinstance(value, Instruction) else None
            if def_block is not None and not self.dt.dominates(def_block, pred):
                continue  # value not defined on this exit path
            current = self._materialize(value)
            emission.trackers[value] = self.b.select(
                self._mask_value(vec), current, emission.trackers[value], "track"
            )

    # ==================================================================== loops

    def _emit_loop(self, loop: Loop) -> None:
        try:
            self._emit_loop_body(loop)
        except ReproError as exc:
            # Loop-level failures (no preheader, unsupported exit structure)
            # anchor region fallback at the loop header.
            attach_location(
                exc, function=self.sf.name, block=loop.header.name
            )
            raise

    def _emit_loop_body(self, loop: Loop) -> None:
        # Loop objects come from a separate find_loops run than the shape
        # analysis' — compare by header block.
        divergent = any(
            l.header is loop.header for l in self.shapes.divergent_loops
        )
        pre_block = self.b.block
        entry_vec = self.block_vec.get(loop.preheader)
        entry_sc = self.block_sc.get(loop.preheader)
        if loop.preheader is None:
            raise VectorizeError(f"loop {loop.header.name} lacks a preheader")

        header = self.b.new_block("vloop")
        self.b.br(header)
        self.b.position_at_end(header)

        live = self.b.phi(self.mask_type, "live")
        live.append_operand(self._mask_value(entry_vec))
        live.append_operand(pre_block)

        emission = _LoopEmission(loop, divergent, header, live)

        # Header phis become scalar or vector phis in the output loop.
        latch = loop.latches[0]
        header_phis = loop.header.phis()
        phi_map: List[Tuple[Instruction, Instruction, bool]] = []
        for phi in header_phis:
            init = phi.phi_value_for(loop.preheader)
            shape = self.shapes.shape_of(phi)
            if shape.is_indexed:
                new = self.b.phi(phi.type, phi.name)
                self._append_incoming(new, self._base_of_at(init, pre_block), pre_block)
                self.vmap[phi] = new
                phi_map.append((phi, new, False))
            else:
                new = self.b.phi(_vector_of(phi.type, self.gang), phi.name)
                self._append_incoming(new, self._materialize_at(init, pre_block), pre_block)
                self.vecmap[phi] = new
                phi_map.append((phi, new, True))

        # Exit-mask accumulators (one per exit edge).
        exit_edges = []
        for block in loop.blocks:
            for succ in block.successors:
                if succ not in loop.blocks:
                    exit_edges.append((block, succ))
        zeros = Constant(self.mask_type, [0] * self.gang)
        for key in exit_edges:
            acc = self.b.phi(self.mask_type, "exitacc")
            self._append_incoming(acc, zeros, pre_block)
            emission.acc_vec[key] = acc
            emission.acc_vec_phi[key] = acc
            if not divergent:
                sacc = self.b.phi(I1, "exitacc.sc")
                self._append_incoming(sacc, Constant(I1, 0), pre_block)
                emission.acc_sc[key] = sacc
                emission.acc_sc_phi[key] = sacc

        # Trackers for varying values escaping a divergent loop.
        if divergent:
            for value in self._escaping_values(loop):
                tr = self.b.phi(_vector_of(value.type, self.gang), value.name + ".tr")
                self._append_incoming(tr, UndefValue(tr.type), pre_block)
                emission.trackers[value] = tr
                emission.tracker_phis[value] = tr

        # The loop header's active mask is the live mask.
        self._clobber_memory()  # body loads must not reuse pre-loop values
        self.block_vec[loop.header] = live
        self.block_sc[loop.header] = Constant(I1, 1)
        self._loop_stack.append(emission)

        items = self._region_items(loop)
        if items[0] is not loop.header:
            items.remove(loop.header)
            items.insert(0, loop.header)
        self._emit_items(items)

        self._loop_stack.pop()
        end_block = self.b.block

        back_key = (latch, loop.header)
        live_next = self._mask_value(self.edge_vec.get(back_key))
        self._append_incoming(live, live_next, end_block)
        for phi, new, is_vector in phi_map:
            latch_value = phi.phi_value_for(latch)
            incoming = (
                self._materialize(latch_value) if is_vector else self._base_of(latch_value)
            )
            self._append_incoming(new, incoming, end_block)
        for key in exit_edges:
            self._append_incoming(emission.acc_vec_phi[key], emission.acc_vec[key], end_block)
            if key in emission.acc_sc_phi:
                self._append_incoming(emission.acc_sc_phi[key], emission.acc_sc[key], end_block)
        for value, phi in emission.tracker_phis.items():
            self._append_incoming(phi, emission.trackers[value], end_block)

        self._clobber_memory()  # post-loop loads must not reuse body values
        cont = self.b.mask_any(live_next, "continue")
        after = self.b.new_block("vloop.exit")
        self.b.condbr(cont, header, after)
        self.b.position_at_end(after)

        # Publish final exit masks as the loop's outgoing edges, and final
        # trackers as the escaping values' vector forms.
        for key in exit_edges:
            self.edge_vec[key] = emission.acc_vec[key]
            self.edge_sc[key] = emission.acc_sc.get(key)
        for value in emission.trackers:
            self.vecmap[value] = emission.trackers[value]
            self.vmap.pop(value, None)

    def _append_incoming(self, phi: Instruction, value: Value, block: BasicBlock) -> None:
        phi.append_operand(value)
        phi.append_operand(block)

    def _escaping_values(self, loop: Loop) -> List[Value]:
        result = []
        for block in loop.blocks:
            for instr in block.instructions:
                if instr.type.is_void:
                    continue
                if any(
                    isinstance(user, Instruction) and user.parent not in loop.blocks
                    for user in instr.users
                ):
                    result.append(instr)
        return result

    # ==================================================================== values

    def _base_of(self, value: Value) -> Value:
        if isinstance(value, Constant):
            return value
        if isinstance(value, UndefValue):
            return UndefValue(value.type)
        base = self.vmap.get(value)
        if base is None:
            raise VectorizeError(
                f"no scalar base for %{getattr(value, 'name', value)} "
                f"(shape {self.shapes.shape_of(value)})"
            )
        return base

    def _base_of_at(self, value: Value, block: BasicBlock) -> Value:
        return self._base_of(value)

    def _materialize(self, value: Value) -> Value:
        """Vector form of any value, inserting broadcasts at the def point."""
        cached = self.vecmap.get(value)
        if cached is not None:
            return cached
        shape = self.shapes.shape_of(value)
        if isinstance(value, Constant):
            if value.type.is_vector:
                return value
            payload = [value.value] * self.gang
            return Constant(_vector_of(value.type, self.gang), payload)
        if isinstance(value, UndefValue):
            return UndefValue(_vector_of(value.type, self.gang))
        if shape.is_varying:
            raise VectorizeError(
                f"varying value %{getattr(value, 'name', '?')} has no vector form yet"
            )
        base = self._base_of(value)
        vec = self._materialize_indexed(base, shape, value)
        self.vecmap[value] = vec
        return vec

    def _materialize_at(self, value: Value, block: BasicBlock) -> Value:
        return self._materialize(value)

    def _materialize_indexed(self, base: Value, shape: Shape, original: Value) -> Value:
        """Broadcast + offsets at the base's definition point."""
        saved_block, saved_idx = self.b.block, self.b._insert_index
        self._position_after(base)
        vec = self._emit_indexed_vector(base, shape, original.type)
        self.b.block, self.b._insert_index = saved_block, saved_idx
        return vec

    def _position_after(self, base: Value) -> None:
        if isinstance(base, Instruction) and base.parent is not None:
            block = base.parent
            idx = block.instructions.index(base) + 1
            while idx < len(block.instructions) and block.instructions[idx].opcode == "phi":
                idx += 1
            self.b.block = block
            self.b._insert_index = idx
        else:
            entry = self.vf.entry
            self.b.block = entry
            self.b._insert_index = entry.first_non_phi_index()

    def _emit_indexed_vector(self, base: Value, shape: Shape, type: Type) -> Value:
        gang = self.gang
        if isinstance(type, PointerType):
            addr = self.b.ptrtoint(base, I64, "addr")
            bvec = self.b.broadcast(addr, gang)
            if shape.is_uniform:
                vec = bvec
            else:
                offs = Constant(VectorType(I64, gang), [int(o) for o in shape.offsets])
                vec = self.b.add(bvec, offs, "addrs")
            return self.b.inttoptr(vec, VectorType(type, gang), "ptrs")
        if isinstance(base, Constant) and isinstance(type, IntType):
            # Constant base: the whole indexed vector is an immediate.
            mask = (1 << type.bits) - 1
            return Constant(
                VectorType(type, gang),
                [(int(base.value) + int(o)) & mask for o in shape.offsets],
            )
        bvec = self.b.broadcast(base, gang, "splat")
        if shape.is_uniform:
            return bvec
        if not isinstance(type, IntType):
            raise VectorizeError(f"indexed value of non-integer type {type}")
        offs = Constant(
            VectorType(type, gang), [int(o) & ((1 << type.bits) - 1) for o in shape.offsets]
        )
        return self.b.add(bvec, offs, "idxvec")

    # ==================================================================== instructions

    def _emit_instruction(self, instr: Instruction, mask: Optional[Value]) -> None:
        op = instr.opcode
        shape = self.shapes.shape_of(instr) if not instr.type.is_void else None

        if op == "alloca":
            # Privatization: one blocked copy of the allocation per lane.
            new = Instruction(
                "alloca",
                instr.type,
                [],
                self.vf.unique_name(instr.name),
                {"count": instr.attrs.get("count", 1) * self.gang},
            )
            self.b.insert(new)
            self.vmap[instr] = new
            return
        if op == "load":
            self._emit_load(instr, mask)
            return
        if op == "store":
            self._emit_store(instr, mask)
            return
        if op == "call":
            self._emit_call(instr, mask)
            return
        if op == "atomicrmw":
            self._emit_atomicrmw(instr, mask)
            return

        if shape is not None and shape.is_indexed:
            if op == "gep" and instr.operands[0] in self.shapes.soa_allocas:
                # SoA-swizzled private array (§4.2.3): lane-0 address of
                # element idx is base + idx*G*size, i.e. gep(base, idx*G).
                base = self._base_of(instr.operands[0])
                idx = self._base_of(instr.operands[1])
                scaled = self.b.mul(
                    idx, Constant(idx.type, self.gang), "soa.idx"
                )
                self.vmap[instr] = self.b.gep(base, scaled, instr.name)
                return
            # Scalar clone operating on bases (uniform scalarization).
            operands = [self._base_of(o) for o in instr.operands]
            new = Instruction(op, instr.type, operands, self.vf.unique_name(instr.name),
                              dict(instr.attrs))
            self.b.insert(new)
            self.vmap[instr] = new
            return

        # Varying: vector clone.
        if op in INT_BINOPS or op in FLOAT_BINOPS or op in UNARY_OPS or op in (
            "icmp", "fcmp", "select", "fma",
        ):
            operands = [self._materialize(o) for o in instr.operands]
            if op in ("sdiv", "udiv", "srem", "urem", "fdiv") and mask is not None:
                # Guard masked-off lanes against spurious division traps.
                one = Constant(operands[1].type, [1] * self.gang)
                operands[1] = self.b.select(mask, operands[1], one, "safediv")
            if op == "select" and not instr.operands[0].type.is_vector:
                # Scalar condition feeding a varying select: keep it vector.
                pass
            rtype = _vector_of(instr.type, self.gang)
            new = Instruction(op, rtype, operands, self.vf.unique_name(instr.name),
                              dict(instr.attrs))
            self.b.insert(new)
            self.vecmap[instr] = new
            return
        if op in CAST_OPS:
            operand = self._materialize(instr.operands[0])
            rtype = _vector_of(instr.type, self.gang)
            new = Instruction(op, rtype, [operand], self.vf.unique_name(instr.name))
            self.b.insert(new)
            self.vecmap[instr] = new
            return
        if op == "gep":
            # Varying address: compute the address vector in integer space.
            ptr, idx = instr.operands
            base = self._materialize(ptr)
            addr = self.b.ptrtoint(base, VectorType(I64, self.gang))
            idxv = self._materialize(idx)
            if idx.type != I64:
                ext = "sext"  # gep indices are signed
                idxv = self.b.cast(ext, idxv, VectorType(I64, self.gang))
            stride = instr.type.pointee.size_bytes()
            if ptr in self.shapes.soa_allocas:
                # SoA-swizzled private array: lanes are interleaved per
                # element, so consecutive elements of one lane sit
                # gang*size bytes apart (the indexed-gep path above makes
                # the same adjustment via idx*G).
                stride *= self.gang
            size = Constant(VectorType(I64, self.gang), [stride] * self.gang)
            addr = self.b.add(addr, self.b.mul(idxv, size), "addrs")
            self.vecmap[instr] = self.b.inttoptr(
                addr, VectorType(instr.type, self.gang), "ptrs"
            )
            return

        raise VectorizeError(f"cannot vectorize opcode {op}")

    # -------------------------------------------------------------- memory forms

    def _address_plan(self, addr: Value, elem: Type):
        """Classify an address operand (§4.2.3): returns one of
        ('uniform', base_ptr) | ('packed', first_ptr) |
        ('window', first_ptr, rel_elems, k_vectors) | ('gather', ptr_vector)."""
        shape = self.shapes.shape_of(addr)
        size = elem.size_bytes()
        gang = self.gang
        if shape.is_uniform:
            return ("uniform", self._base_of(addr))
        if shape.is_indexed:
            offsets = shape.offsets
            lo = int(offsets.min())
            rel = offsets - lo
            if np.array_equal(rel, np.arange(gang, dtype=np.int64) * size):
                return ("packed", self._ptr_add_bytes(self._base_of(addr), lo, elem))
            if not (rel % size).any():
                rel_elems = rel // size
                k = int(rel_elems.max()) // gang + 1
                if k <= self.config.max_stride_window:
                    first = self._ptr_add_bytes(self._base_of(addr), lo, elem)
                    return ("window", first, rel_elems, k)
            # fall through to gather on misaligned or wide-window offsets
        return ("gather", self._materialize(addr))

    def _ptr_add_bytes(self, ptr: Value, nbytes: int, elem: Type) -> Value:
        if nbytes == 0:
            return ptr
        size = elem.size_bytes()
        if nbytes % size == 0:
            return self.b.gep(ptr, Constant(I64, nbytes // size))
        raw = self.b.ptrtoint(ptr, I64)
        raw = self.b.add(raw, Constant(I64, nbytes))
        return self.b.inttoptr(raw, ptr.type)

    def _clobber_memory(self) -> None:
        self._mem_cache.clear()

    def _cached_load(self, addr: Value, mask: Optional[Value]) -> Optional[Value]:
        entry = self._mem_cache.get(addr)
        if entry is None:
            return None
        cached_mask, value = entry
        if self._mask_subsumes(cached_mask, mask):
            return value
        return None

    @staticmethod
    def _mask_subsumes(outer: Optional[Value], inner: Optional[Value], depth: int = 8) -> bool:
        """True if every lane active in ``inner`` is active in ``outer``
        (outer None = all lanes; inner derived from outer via and-chains)."""
        if outer is None or inner is outer:
            return True
        if depth > 0 and isinstance(inner, Instruction) and inner.opcode == "and":
            return any(
                Vectorizer._mask_subsumes(outer, op, depth - 1)
                for op in inner.operands
            )
        return False

    def _count_form(self, form: str) -> None:
        self.memform_counts[form] = self.memform_counts.get(form, 0) + 1

    def _emit_load(self, instr: Instruction, mask: Optional[Value]) -> None:
        addr = instr.operands[0]
        elem = instr.type
        plan = self._address_plan(addr, elem)
        kind = plan[0]
        self._count_form(f"load.{kind}")
        if kind == "uniform":
            cached = self._cached_load(addr, None)
            if cached is not None:
                self.vmap[instr] = cached
                return
            new = Instruction("load", elem, [plan[1]], self.vf.unique_name(instr.name))
            self.b.insert(new)
            self.vmap[instr] = new
            self._mem_cache[addr] = (None, new)
            return
        cached = self._cached_load(addr, mask)
        if cached is not None:
            self.vecmap[instr] = cached
            return
        m = self._mask_value(mask)
        if kind == "packed":
            value = self.b.vload(plan[1], self.gang, m, instr.name)
        elif kind == "window":
            _, first, rel_elems, k = plan
            value = self._emit_window_load(first, rel_elems, k, elem, m, instr.name)
        else:
            value = self.b.gather(plan[1], m, instr.name)
        self.vecmap[instr] = value
        self._mem_cache[addr] = (mask, value)

    def _emit_window_load(self, first: Value, rel_elems: np.ndarray, k: int,
                          elem: Type, mask: Value, name: str) -> Value:
        """Packed loads covering the window, combined with shuffles (§4.2.3:
        "a packed load/store plus shuffle operation(s)")."""
        gang = self.gang
        idx = Constant(VectorType(I64, gang), [int(e) for e in rel_elems])
        positions = set(int(e) for e in rel_elems)
        vectors = []
        for j in range(k):
            ptr_j = self.b.gep(first, Constant(I64, j * gang)) if j else first
            needed = Constant(
                self.mask_type,
                [1 if (j * gang + p) in positions else 0 for p in range(gang)],
            )
            vectors.append(self.b.vload(ptr_j, gang, needed, f"{name}.w{j}"))
        result = self.b.shuffle(vectors[0], idx, name)
        for j in range(1, k):
            pick = Constant(
                self.mask_type, [1 if e // gang == j else 0 for e in rel_elems]
            )
            result = self.b.select(pick, self.b.shuffle(vectors[j], idx), result, name)
        return result

    def _emit_store(self, instr: Instruction, mask: Optional[Value]) -> None:
        self._clobber_memory()
        value, addr = instr.operands
        elem = value.type
        plan = self._address_plan(addr, elem)
        kind = plan[0]
        vshape = self.shapes.shape_of(value)
        if kind == "uniform":
            self._count_form("store.uniform")
            self._emit_uniform_store(instr, plan[1], value, vshape, mask)
            return
        m = self._mask_value(mask)
        if kind == "packed":
            self._count_form("store.packed")
            self.b.vstore(self._materialize(value), plan[1], m)
            return
        if kind == "window":
            _, first, rel_elems, k = plan
            if len(set(rel_elems.tolist())) == len(rel_elems):
                self._count_form("store.window")
                self._emit_window_store(first, rel_elems, k, value, m)
                return
            plan = ("gather", self._materialize(addr))  # colliding lanes: scatter
        self._count_form("store.scatter")
        self.b.scatter(self._materialize(value), plan[1], m)

    def _emit_window_store(self, first: Value, rel_elems: np.ndarray, k: int,
                           value: Value, mask: Value) -> None:
        gang = self.gang
        src = self._materialize(value)
        for j in range(k):
            inv = [0] * gang
            valid = [0] * gang
            for lane, e in enumerate(rel_elems):
                e = int(e)
                if j * gang <= e < (j + 1) * gang:
                    inv[e - j * gang] = lane
                    valid[e - j * gang] = 1
            if not any(valid):
                continue
            invc = Constant(VectorType(I64, gang), inv)
            wvals = self.b.shuffle(src, invc)
            wmask = self.b.and_(
                self.b.shuffle(mask, invc), Constant(self.mask_type, valid)
            )
            ptr_j = self.b.gep(first, Constant(I64, j * gang)) if j else first
            self.b.vstore(wvals, ptr_j, wmask)

    def _emit_uniform_store(self, instr: Instruction, base_ptr: Value, value: Value,
                            vshape: Shape, mask: Optional[Value]) -> None:
        # §4.2.3: stores to a uniform address are racy unless one lane is
        # active; warn and let one active lane perform the store.
        if not vshape.is_uniform:
            self.warnings.append(
                f"@{self.sf.name}: store of a varying value to a uniform address "
                "is racy; one active lane will win"
            )
            lanes = Constant(VectorType(I64, self.gang), list(range(self.gang)))
            if mask is None:
                pick = Constant(I64, self.gang - 1)
            else:
                capped = self.b.select(
                    mask, lanes, Constant(VectorType(I64, self.gang), [0] * self.gang)
                )
                pick = self.b.reduce("reduce_max_u", capped, "lastlane")
            scalar = self.b.extractelement(self._materialize(value), pick, "winner")
        else:
            scalar = self._base_of(value)
        if mask is None:
            self.b.store(scalar, base_ptr)
        else:
            any_active = self.b.mask_any(mask, "anylane")
            self._emit_guarded(any_active, lambda: self.b.store(scalar, base_ptr))

    def _emit_guarded(self, cond: Value, emit) -> None:
        then = self.b.new_block("guard.then")
        cont = self.b.new_block("guard.cont")
        self.b.condbr(cond, then, cont)
        self.b.position_at_end(then)
        emit()
        self.b.br(cont)
        self.b.position_at_end(cont)

    # -------------------------------------------------------------- calls

    def _emit_call(self, instr: Instruction, mask: Optional[Value]) -> None:
        callee = instr.operands[0]
        args = instr.operands[1:]
        if isinstance(callee, ExternalFunction):
            name = callee.name
            if name.startswith("psim."):
                self._emit_psim_intrinsic(instr, name, args, mask)
                return
            if name.startswith("ml."):
                self._emit_math_call(instr, callee, args, mask)
                return
            raise VectorizeError(f"call to unknown external @{name} in SPMD region")
        # Non-inlined scalar function: serialize one call per active lane.
        self._serialize_call(instr, callee, args, mask)

    def _emit_math_call(self, instr, callee, args, mask) -> None:
        if self.shapes.shape_of(instr).is_uniform:
            new = Instruction(
                "call", instr.type, [callee] + [self._base_of(a) for a in args],
                self.vf.unique_name(instr.name),
            )
            self.b.insert(new)
            self.vmap[instr] = new
            return
        fn_name = callee.name.split(".")[1]
        ext = vector_math_external(
            self.module, fn_name, instr.type, self.gang, self.config.math_flavour
        )
        vargs = [self._materialize(a) for a in args]
        self.vecmap[instr] = self.b.call(ext, vargs, instr.name)

    def _emit_psim_intrinsic(self, instr, name, args, mask) -> None:
        gang = self.gang
        if name == "psim.lane_num":
            self.vmap[instr] = Constant(I64, 0)  # indexed: base 0, offsets 0..G-1
            return
        if name == "psim.gang_sync":
            return  # lockstep SIMD execution subsumes the barrier
        if name.startswith("psim.shuffle."):
            src = self._materialize(args[0])
            idx = self._materialize(args[1])
            # Real permute instructions take narrow lane indices (vpermb's
            # byte controls); keep the index vector at i16 so legalization
            # does not drag 64-bit index chunks around.
            if idx.type.elem.bits > 16:
                narrow_t = VectorType(IntType(16), self.gang)
                if isinstance(idx, Constant):
                    idx = Constant(narrow_t, [v & 0xFFFF for v in idx.value])
                else:
                    idx = self.b.trunc(idx, narrow_t)
            self.vecmap[instr] = self.b.shuffle(src, idx, instr.name)
            return
        if name.startswith("psim.broadcast."):
            src = self._materialize(args[0])
            if self.shapes.shape_of(args[1]).is_uniform:
                lane = self._base_of(args[1])
                new = self.b.extractelement(src, lane, instr.name)
                self.vmap[instr] = new
            else:
                self.vecmap[instr] = self.b.shuffle(src, self._materialize(args[1]), instr.name)
            return
        if name.startswith("psim.reduce_"):
            self._emit_reduction(instr, name, args, mask)
            return
        if name in ("psim.any", "psim.all"):
            v = self._materialize(args[0])
            if name == "psim.any":
                masked = v if mask is None else self.b.and_(v, mask)
                self.vmap[instr] = self.b.mask_any(masked, instr.name)
            else:
                masked = v if mask is None else self.b.or_(v, self._not_vec(mask))
                self.vmap[instr] = self.b.mask_all(masked, instr.name)
            return
        if name == "psim.sad":
            a = self._materialize(args[0])
            bb = self._materialize(args[1])
            if mask is not None:
                bb = self.b.select(mask, bb, a)  # inactive lanes contribute 0
            sadv = self.b.sad(a, bb)
            self.vmap[instr] = self.b.reduce("reduce_add", sadv, instr.name)
            return
        raise VectorizeError(f"unhandled psim intrinsic {name}")

    def _emit_reduction(self, instr, name, args, mask) -> None:
        kind = name.split(".")[1]  # reduce_add | reduce_min[.s/.u] | ...
        parts = kind.split("_")
        op = parts[1]
        signed = name.split(".")[2] == "s" if name.count(".") == 3 else instr.type.is_float
        v = self._materialize(args[0])
        if mask is not None:
            neutral = _reduction_neutral(op, instr.type, signed, self.gang)
            v = self.b.select(mask, v, neutral)
        if op == "add":
            self.vmap[instr] = self.b.reduce("reduce_add", v, instr.name)
        elif instr.type.is_float:
            red = "reduce_min_u" if op == "min" else "reduce_max_u"
            self.vmap[instr] = self.b.reduce(red, v, instr.name)
        else:
            red = f"reduce_{op}_{'s' if signed else 'u'}"
            self.vmap[instr] = self.b.reduce(red, v, instr.name)

    def _serialize_call(self, instr, callee, args, mask) -> None:
        self._clobber_memory()
        result = self._serialize_lanes(
            mask,
            lambda lane: self._scalar_call_for_lane(instr, callee, args, lane),
            None if instr.type.is_void else instr.type,
            instr.name,
        )
        if result is not None:
            self.vecmap[instr] = result

    def _scalar_call_for_lane(self, instr, callee, args, lane: int) -> Optional[Value]:
        lowered = []
        for arg in args:
            if self.shapes.shape_of(arg).is_uniform:
                lowered.append(self._base_of(arg))
            else:
                vec = self._materialize(arg)
                lowered.append(self.b.extractelement(vec, Constant(I64, lane)))
        call = Instruction(
            "call", instr.type, [callee] + lowered, self.vf.unique_name(instr.name)
        )
        self.b.insert(call)
        return None if instr.type.is_void else call

    def _emit_atomicrmw(self, instr, mask) -> None:
        self._clobber_memory()
        # Fast path: uniform address and value, result unused — a single
        # scalar atomic replaces the per-lane serialization.  add/sub scale
        # by the active-lane count; the bitwise and min/max forms (signed
        # included) are idempotent, so one application stands in for all
        # active lanes unscaled.
        ashape = self.shapes.shape_of(instr.operands[0])
        vshape = self.shapes.shape_of(instr.operands[1])
        rmw_op = instr.attrs.get("op")
        if (
            ashape.is_uniform
            and vshape.is_uniform
            and not instr.uses
            and rmw_op in ("add", "sub", "and", "or",
                           "umin", "umax", "smin", "smax")
        ):
            self._count_form(f"atomic.fastpath.{rmw_op}")
            ptr = self._base_of(instr.operands[0])
            val = self._base_of(instr.operands[1])
            if rmw_op in ("add", "sub"):
                if mask is None:
                    count = Constant(I64, self.gang)
                else:
                    count = self.b.mask_popcnt(mask, "nactive")
                scale = self.b.cast("trunc", count, val.type) if val.type != I64 else count
                val = self.b.mul(val, scale, "scaled")

            def emit_one():
                new = Instruction(
                    "atomicrmw", instr.type, [ptr, val],
                    self.vf.unique_name(instr.name), dict(instr.attrs),
                )
                self.b.insert(new)

            if mask is None:
                emit_one()
            else:
                self._emit_guarded(self.b.mask_any(mask, "anylane"), emit_one)
            return

        self._count_form(f"atomic.serialized.{rmw_op}")
        addrs = self._materialize(instr.operands[0])
        values = self._materialize(instr.operands[1])

        def per_lane(lane: int) -> Value:
            addr = self.b.extractelement(addrs, Constant(I64, lane))
            val = self.b.extractelement(values, Constant(I64, lane))
            new = Instruction(
                "atomicrmw", instr.type, [addr, val],
                self.vf.unique_name(instr.name), dict(instr.attrs),
            )
            self.b.insert(new)
            return new

        result = self._serialize_lanes(mask, per_lane, instr.type, instr.name)
        if result is not None:
            self.vecmap[instr] = result

    def _serialize_lanes(self, mask, per_lane, result_type: Optional[Type], name: str):
        """Per-active-lane serialization (§4.2.3): guarded scalar execution
        for each lane, accumulating per-lane results into a vector."""
        gang = self.gang
        acc = UndefValue(_vector_of(result_type, gang)) if result_type else None
        for lane in range(gang):
            if mask is None:
                value = per_lane(lane)
                if acc is not None:
                    acc = self.b.insertelement(acc, Constant(I64, lane), value)
                continue
            active = self.b.extractelement(mask, Constant(I64, lane), f"{name}.l{lane}")
            then = self.b.new_block("lane.then")
            cont = self.b.new_block("lane.cont")
            before = self.b.block
            self.b.condbr(active, then, cont)
            self.b.position_at_end(then)
            value = per_lane(lane)
            updated = None
            if acc is not None:
                updated = self.b.insertelement(acc, Constant(I64, lane), value)
            then_end = self.b.block
            self.b.br(cont)
            self.b.position_at_end(cont)
            if acc is not None:
                phi = self.b.phi(updated.type, f"{name}.acc")
                self._append_incoming(phi, updated, then_end)
                self._append_incoming(phi, acc, before)
                acc = phi
        return acc


def _vector_of(type: Type, gang: int) -> VectorType:
    if isinstance(type, VectorType):
        return type
    return VectorType(type, gang)


def _reduction_neutral(op: str, type: Type, signed: bool, gang: int) -> Constant:
    if op == "add":
        payload = 0.0 if type.is_float else 0
    elif type.is_float:
        payload = float("inf") if op == "min" else float("-inf")
    elif signed:
        half = 1 << (type.bits - 1)
        payload = half - 1 if op == "min" else half  # INT_MAX / INT_MIN
    else:
        payload = (1 << type.bits) - 1 if op == "min" else 0
    return Constant(VectorType(type, gang), [payload] * gang)
