"""``repro.vectorizer`` — the Parsimony SPMD-to-SIMD vectorization pass.

This is the paper's primary contribution (§4.2): a standalone IR-to-IR
pass that rewrites SPMD-annotated functions into gang-wide vector code —
shape analysis with SMT-verified transformation rules, mask-based control
flow linearization, and shape-directed instruction transformation.

``vectorize_module`` is the entry point used by the compilation drivers
(``repro.driver``): it can be placed anywhere in the scalar optimization
pipeline, which is the integration property the paper argues for.
"""

from typing import Dict, List, Optional

from .. import telemetry
from ..ir.module import Function, Module
from ..ir.verifier import verify_function
from ..passes import constant_fold, dce, loop_simplify, mem2reg, simplify_cfg
from ..passes.inline import inline_function_calls
from .shape import Shape
from .shapes import ShapeAnalysis
from .transform import VectorizeConfig, VectorizeError, Vectorizer

__all__ = [
    "Shape",
    "ShapeAnalysis",
    "VectorizeConfig",
    "VectorizeError",
    "Vectorizer",
    "vectorize_function",
    "vectorize_module",
]


def vectorize_function(
    module: Module, function: Function, config: Optional[VectorizeConfig] = None
) -> Function:
    """Vectorize one SPMD-annotated function and splice it into the module.

    The scalar original is kept (renamed ``<name>.scalarref``) for
    inspection; every call site is rewired to the vector version, which
    takes over the original name.
    """
    config = config or VectorizeConfig()

    # Normalize: promote locals to SSA, fold, canonicalize loops.  The pass
    # itself is position-independent; this is just the usual -O pipeline
    # that would have run anyway.
    inline_function_calls(function)
    mem2reg(function)
    constant_fold(function)
    dce(function)
    simplify_cfg(function)
    loop_simplify(function)
    verify_function(function)

    analysis = ShapeAnalysis(
        function,
        function.spmd.gang_size,
        assume_nsw=config.assume_nsw,
        enabled=config.enable_shape_analysis,
    )
    vectorizer = Vectorizer(module, function, analysis, config)
    vectorized = vectorizer.run()
    constant_fold(vectorized)
    dce(vectorized)
    verify_function(vectorized)

    name = function.name
    del module.functions[name]
    function.name = name + ".scalarref"
    module.functions[function.name] = function
    vectorized.name = name
    module.functions[name] = vectorized
    function.replace_all_uses_with(vectorized)
    vectorized.attrs["parsimony_warnings"] = vectorizer.warnings

    counters = {
        "shapes": _shape_counts(analysis),
        "memory_forms": dict(vectorizer.memform_counts),
        "mask_ops": _mask_op_counts(vectorized),
    }
    vectorized.attrs["parsimony_telemetry"] = counters
    telemetry.record_vectorization(
        name,
        function.spmd.gang_size,
        counters["shapes"],
        counters["memory_forms"],
        counters["mask_ops"],
        vectorizer.warnings,
    )
    return vectorized


def _shape_counts(analysis: ShapeAnalysis) -> Dict[str, int]:
    """Classify every analyzed value as uniform / indexed / varying (§4.2.1)."""
    counts = {"uniform": 0, "indexed": 0, "varying": 0}
    for shape in analysis.shapes.values():
        if shape.is_uniform:
            counts["uniform"] += 1
        elif shape.is_indexed:
            counts["indexed"] += 1
        else:
            counts["varying"] += 1
    return counts


def _mask_op_counts(function: Function) -> Dict[str, int]:
    """Mask operations in the emitted code: explicit mask tests plus
    mask-conditioned blends (vector-i1 selects from linearization)."""
    counts: Dict[str, int] = {}
    for instr in function.instructions():
        op = instr.opcode
        if op in ("mask_any", "mask_all", "mask_popcnt"):
            counts[op] = counts.get(op, 0) + 1
        elif op == "select":
            cond = instr.operands[0]
            if cond.type.is_vector:
                counts["blend_select"] = counts.get("blend_select", 0) + 1
        elif op in ("vload", "vstore", "gather", "scatter"):
            counts["masked_memory"] = counts.get("masked_memory", 0) + 1
    return counts


def vectorize_module(
    module: Module, config: Optional[VectorizeConfig] = None
) -> List[Function]:
    """Run the Parsimony pass over every SPMD-annotated function."""
    results = []
    for function in list(module.functions.values()):
        if function.spmd is not None and not function.name.endswith(".scalarref"):
            results.append(vectorize_function(module, function, config))
    return results
