"""``repro.vectorizer`` — the Parsimony SPMD-to-SIMD vectorization pass.

This is the paper's primary contribution (§4.2): a standalone IR-to-IR
pass that rewrites SPMD-annotated functions into gang-wide vector code —
shape analysis with SMT-verified transformation rules, mask-based control
flow linearization, and shape-directed instruction transformation.

``vectorize_module`` is the entry point used by the compilation drivers
(``repro.driver``): it can be placed anywhere in the scalar optimization
pipeline, which is the integration property the paper argues for.

Degradation is two-tiered.  When vectorizing a function fails at a known
block, the *region-granular* fallback (:mod:`.regions`) outlines the
minimal single-entry region around the failure into a scalar helper and
retries, so the rest of the function still vectorizes; only when no such
region exists (or the failure carries no block provenance) does the
whole function drop to the sequential lane loop of :mod:`.scalarize`.
"""

from typing import Dict, List, Optional

from .. import faultinject, telemetry
from ..diagnostics import CompileError, ReproError
from ..ir.module import Function, Module
from ..ir.verifier import verify_function
from ..passes import constant_fold, dce, loop_simplify, mem2reg, simplify_cfg
from ..passes.clone import clone_function
from ..passes.inline import inline_function_calls
from .regions import RegionError, compute_fallback_region, outline_region
from .scalarize import ScalarizeError, scalarize_spmd_function
from .shape import Shape
from .shapes import ShapeAnalysis
from .transform import VectorizeConfig, VectorizeError, Vectorizer

__all__ = [
    "Shape",
    "ShapeAnalysis",
    "VectorizeConfig",
    "VectorizeError",
    "Vectorizer",
    "vectorize_function",
    "vectorize_module",
]

#: Cap on outlined regions per function before giving up on partial
#: fallback: each attempt re-runs normalization plus the vectorizer, and a
#: function defeating the pass this many times is better off whole-scalar.
_MAX_PARTIAL_REGIONS = 8


def _normalize_spmd_function(function: Function) -> None:
    """The usual -O normalization the pass relies on: promote locals to
    SSA, fold, canonicalize loops.  Position-independent — this pipeline
    would have run anyway."""
    inline_function_calls(function)
    mem2reg(function)
    constant_fold(function)
    dce(function)
    simplify_cfg(function)
    loop_simplify(function)
    verify_function(function)


def _vectorize_normalized(module: Module, function: Function, config: VectorizeConfig):
    """Run shape analysis + the vectorizer on an already-normalized
    function; returns ``(vectorized, vectorizer, analysis)`` without
    splicing anything into the module."""
    analysis = ShapeAnalysis(
        function,
        function.spmd.gang_size,
        assume_nsw=config.assume_nsw,
        enabled=config.enable_shape_analysis,
    )
    vectorizer = Vectorizer(module, function, analysis, config)
    vectorized = vectorizer.run()
    constant_fold(vectorized)
    dce(vectorized)
    verify_function(vectorized)
    return vectorized, vectorizer, analysis


def _splice_and_record(
    module: Module,
    name: str,
    scalar_source: Function,
    vectorized: Function,
    vectorizer: Vectorizer,
    analysis: ShapeAnalysis,
) -> None:
    """Install ``vectorized`` under ``name``; keep ``scalar_source`` as
    ``<name>.scalarref`` for inspection; rewire all call sites."""
    registered = module.functions.pop(name)
    scalar_source.name = name + ".scalarref"
    module.functions[scalar_source.name] = scalar_source
    vectorized.name = name
    module.functions[name] = vectorized
    registered.replace_all_uses_with(vectorized)  # rewire gang-loop callers
    if registered is not scalar_source:
        _discard_clone(registered)
    vectorized.attrs["parsimony_warnings"] = vectorizer.warnings

    counters = {
        "shapes": _shape_counts(analysis),
        "memory_forms": dict(vectorizer.memform_counts),
        "mask_ops": _mask_op_counts(vectorized),
    }
    vectorized.attrs["parsimony_telemetry"] = counters
    telemetry.record_vectorization(
        name,
        scalar_source.spmd.gang_size,
        counters["shapes"],
        counters["memory_forms"],
        counters["mask_ops"],
        vectorizer.warnings,
    )


def vectorize_function(
    module: Module, function: Function, config: Optional[VectorizeConfig] = None
) -> Function:
    """Vectorize one SPMD-annotated function and splice it into the module.

    The scalar original is kept (renamed ``<name>.scalarref``) for
    inspection; every call site is rewired to the vector version, which
    takes over the original name.
    """
    config = config or VectorizeConfig()
    faultinject.maybe_fail("vectorize", function.name)
    _normalize_spmd_function(function)
    vectorized, vectorizer, analysis = _vectorize_normalized(module, function, config)
    _splice_and_record(
        module, function.name, function, vectorized, vectorizer, analysis
    )
    return vectorized


def _shape_counts(analysis: ShapeAnalysis) -> Dict[str, int]:
    """Classify every analyzed value as uniform / indexed / varying (§4.2.1)."""
    counts = {"uniform": 0, "indexed": 0, "varying": 0}
    for shape in analysis.shapes.values():
        if shape.is_uniform:
            counts["uniform"] += 1
        elif shape.is_indexed:
            counts["indexed"] += 1
        else:
            counts["varying"] += 1
    return counts


def _mask_op_counts(function: Function) -> Dict[str, int]:
    """Mask operations in the emitted code: explicit mask tests plus
    mask-conditioned blends (vector-i1 selects from linearization)."""
    counts: Dict[str, int] = {}
    for instr in function.instructions():
        op = instr.opcode
        if op in ("mask_any", "mask_all", "mask_popcnt"):
            counts[op] = counts.get(op, 0) + 1
        elif op == "select":
            cond = instr.operands[0]
            if cond.type.is_vector:
                counts["blend_select"] = counts.get("blend_select", 0) + 1
        elif op in ("vload", "vstore", "gather", "scatter"):
            counts["masked_memory"] = counts.get("masked_memory", 0) + 1
    return counts


def vectorize_module(
    module: Module, config: Optional[VectorizeConfig] = None,
    strict: bool = False,
) -> List[Function]:
    """Run the Parsimony pass over every SPMD-annotated function.

    Graceful degradation (the pass "can be placed anywhere in the
    optimization pipeline", §4.2 — so it must never take the build down)
    is two-tiered.  When vectorizing a function fails:

    1. if the failure names a block, the minimal single-entry region
       around it is outlined into a scalar helper (:mod:`.regions`) and
       vectorization retries — supported blocks keep their vector forms
       and only the offending region runs one lane at a time;
    2. otherwise (or when no partial region exists), the whole function
       falls back to a correct sequential lane loop (:mod:`.scalarize`).

    Either way the degradation is recorded in :mod:`repro.telemetry` and
    the remaining functions still vectorize.  ``strict=True`` disables
    both fallbacks and re-raises the first failure (for tests and
    debugging).

    The only failure that still surfaces as a :class:`CompileError` is a
    function that can *neither* vectorize *nor* scalarize (a cross-lane
    horizontal intrinsic in a body the vectorizer rejected): there is no
    correct code to emit for it.
    """
    results = []
    for function in list(module.functions.values()):
        if function.spmd is None or function.name.endswith(".scalarref"):
            continue
        name = function.name
        # Pristine snapshot: vectorize_function mutates the input in place
        # (inlining, mem2reg, ...) before building the vector body, so the
        # fallback must restore from an untouched copy.
        pristine = clone_function(function, name + ".fallback")
        try:
            results.append(vectorize_function(module, function, config))
        except ScalarizeError:
            raise
        except Exception as exc:
            if strict:
                raise
            partial = _try_partial_fallback(
                module, name, function, pristine, exc, config
            )
            if partial is not None:
                results.append(partial)
            else:
                _fall_back_to_scalar(module, name, function, pristine, exc)
        else:
            _discard_clone(pristine)
    return results


def _discard_clone(clone: Function) -> None:
    """Unregister a never-used pristine clone's def-use edges (its
    instructions hold uses of constants/externals shared with the module)."""
    for block in list(clone.blocks):
        clone.remove_block(block)


def _failing_block(exc: Exception, function_name: str) -> Optional[str]:
    """The scalar block the vectorizer was emitting when ``exc`` was
    raised, or None when the failure carries no usable block provenance
    (pre-normalization faults, verifier rejections of the *output*
    function, shape-analysis inconsistencies)."""
    if not isinstance(exc, ReproError):
        return None
    diag = exc.diagnostic
    if diag.function != function_name or not diag.block:
        return None
    return diag.block


def _try_partial_fallback(
    module: Module,
    name: str,
    function: Function,
    pristine: Function,
    exc: Exception,
    config: Optional[VectorizeConfig],
) -> Optional[Function]:
    """Attempt region-granular degradation after ``vectorize_function``
    failed.  Returns the spliced vectorized function on success, or None —
    with the module restored to its pre-attempt state — when the caller
    should fall back whole-function."""
    config = config or VectorizeConfig()
    block = _failing_block(exc, name)
    if block is None:
        return None

    # Work on a fresh clone of the pristine body: ``function`` was already
    # mutated by the failed attempt.  Normalization is deterministic, so
    # the failing block name resolves against the re-normalized clone.
    working = clone_function(pristine, name + ".partial")
    helpers: List[Function] = []
    regions: List[Dict[str, object]] = []

    def give_up() -> None:
        for helper in helpers:
            module.functions.pop(helper.name, None)
            _discard_clone(helper)
        _discard_clone(working)
        return None

    try:
        _normalize_spmd_function(working)
    except Exception:
        return give_up()
    blocks_total = len(working.blocks)
    instrs_total = sum(len(b.instructions) for b in working.blocks)

    for _ in range(_MAX_PARTIAL_REGIONS):
        try:
            region = compute_fallback_region(working, block)
            outlined = outline_region(module, working, region, len(helpers))
        except Exception:
            return give_up()  # RegionError or an unexpected outliner failure
        helpers.append(outlined.function)
        regions.append(
            {
                "helper": outlined.function.name,
                "entry": outlined.entry,
                "blocks": outlined.blocks,
                "blocks_scalarized": outlined.blocks_scalarized,
                "instrs_scalarized": outlined.instrs_scalarized,
                "reason": _fallback_reason(exc),
            }
        )
        try:
            _normalize_spmd_function(working)
            vectorized, vectorizer, analysis = _vectorize_normalized(
                module, working, config
            )
        except Exception as retry_exc:
            exc = retry_exc
            block = _failing_block(exc, working.name)
            if block is None:
                return give_up()
            continue

        # Success: splice the mixed vector/scalar result into the module.
        gang_size = working.spmd.gang_size
        _splice_and_record(module, name, working, vectorized, vectorizer, analysis)
        _discard_clone(pristine)
        blocks_scalarized = sum(r["blocks_scalarized"] for r in regions)
        instrs_scalarized = sum(r["instrs_scalarized"] for r in regions)
        info = {
            "regions": regions,
            "blocks_total": blocks_total,
            "blocks_scalarized": blocks_scalarized,
            "instrs_total": instrs_total,
            "instrs_scalarized": instrs_scalarized,
            # Fractions are measured against the normalized pre-outline
            # body; later outlines count helper instructions (incl. seam
            # stubs), so clamp at 1.0.
            "block_fraction": min(1.0, blocks_scalarized / max(1, blocks_total)),
            "instr_fraction": min(1.0, instrs_scalarized / max(1, instrs_total)),
        }
        vectorized.attrs["parsimony_partial_fallback"] = info
        telemetry.record_partial_fallback(name, gang_size, info)
        return vectorized

    return give_up()


def _fall_back_to_scalar(
    module: Module, name: str, function: Function, pristine: Function,
    exc: Exception,
) -> None:
    """Replace a failed vectorization with a scalarized lane loop."""
    gang_size = pristine.spmd.gang_size
    reason = _fallback_reason(exc)

    # Undo whatever the failed attempt left in the module.  The splice in
    # vectorize_function happens only after verification, so normally the
    # module still maps ``name`` to the (mutated) original; handle the
    # post-splice window too for completeness.
    stale = set()
    for key in (name, name + ".scalarref"):
        left = module.functions.pop(key, None)
        if left is not None and left is not pristine:
            stale.add(left)
    stale.add(function)

    pristine.name = name
    module.add_function(pristine)
    for old in stale:
        old.replace_all_uses_with(pristine)  # rewire gang-loop call sites
        _discard_clone(old)

    try:
        scalarize_spmd_function(pristine)
    except ScalarizeError as blocked:
        raise CompileError(
            f"@{name}: vectorization failed ({reason['message']}) and no "
            f"scalar fallback exists: {blocked.diagnostic.message}",
            stage="vectorizer",
            function=name,
            detail={"vectorize_error": reason, **blocked.diagnostic.detail},
        ) from exc

    pristine.attrs["parsimony_fallback"] = reason
    telemetry.record_fallback(name, gang_size, reason)


def _fallback_reason(exc: Exception) -> Dict[str, object]:
    """Structured record of why a function (or region) fell back to scalar
    code, including block/instruction provenance when the failure named
    one."""
    if isinstance(exc, ReproError):
        diag = exc.diagnostic
        stage = diag.stage or "vectorizer"
        message = diag.message.splitlines()[0] if diag.message else ""
        detail = dict(diag.detail)
        block = diag.block
        instruction = diag.instruction
    else:
        stage = "vectorizer"
        message = (str(exc) or type(exc).__name__).splitlines()[0]
        detail = {}
        block = ""
        instruction = ""
    return {
        "stage": stage,
        "error": type(exc).__name__,
        "message": message,
        "block": block,
        "instruction": instruction,
        "detail": detail,
    }
