"""``repro.vectorizer`` — the Parsimony SPMD-to-SIMD vectorization pass.

This is the paper's primary contribution (§4.2): a standalone IR-to-IR
pass that rewrites SPMD-annotated functions into gang-wide vector code —
shape analysis with SMT-verified transformation rules, mask-based control
flow linearization, and shape-directed instruction transformation.

``vectorize_module`` is the entry point used by the compilation drivers
(``repro.driver``): it can be placed anywhere in the scalar optimization
pipeline, which is the integration property the paper argues for.
"""

from typing import List, Optional

from ..ir.module import Function, Module
from ..ir.verifier import verify_function
from ..passes import constant_fold, dce, loop_simplify, mem2reg, simplify_cfg
from ..passes.inline import inline_function_calls
from .shape import Shape
from .shapes import ShapeAnalysis
from .transform import VectorizeConfig, VectorizeError, Vectorizer

__all__ = [
    "Shape",
    "ShapeAnalysis",
    "VectorizeConfig",
    "VectorizeError",
    "Vectorizer",
    "vectorize_function",
    "vectorize_module",
]


def vectorize_function(
    module: Module, function: Function, config: Optional[VectorizeConfig] = None
) -> Function:
    """Vectorize one SPMD-annotated function and splice it into the module.

    The scalar original is kept (renamed ``<name>.scalarref``) for
    inspection; every call site is rewired to the vector version, which
    takes over the original name.
    """
    config = config or VectorizeConfig()

    # Normalize: promote locals to SSA, fold, canonicalize loops.  The pass
    # itself is position-independent; this is just the usual -O pipeline
    # that would have run anyway.
    inline_function_calls(function)
    mem2reg(function)
    constant_fold(function)
    dce(function)
    simplify_cfg(function)
    loop_simplify(function)
    verify_function(function)

    analysis = ShapeAnalysis(
        function,
        function.spmd.gang_size,
        assume_nsw=config.assume_nsw,
        enabled=config.enable_shape_analysis,
    )
    vectorizer = Vectorizer(module, function, analysis, config)
    vectorized = vectorizer.run()
    constant_fold(vectorized)
    dce(vectorized)
    verify_function(vectorized)

    name = function.name
    del module.functions[name]
    function.name = name + ".scalarref"
    module.functions[function.name] = function
    vectorized.name = name
    module.functions[name] = vectorized
    function.replace_all_uses_with(vectorized)
    vectorized.attrs["parsimony_warnings"] = vectorizer.warnings
    return vectorized


def vectorize_module(
    module: Module, config: Optional[VectorizeConfig] = None
) -> List[Function]:
    """Run the Parsimony pass over every SPMD-annotated function."""
    results = []
    for function in list(module.functions.values()):
        if function.spmd is not None and not function.name.endswith(".scalarref"):
            results.append(vectorize_function(module, function, config))
    return results
