"""``repro.vectorizer`` — the Parsimony SPMD-to-SIMD vectorization pass.

This is the paper's primary contribution (§4.2): a standalone IR-to-IR
pass that rewrites SPMD-annotated functions into gang-wide vector code —
shape analysis with SMT-verified transformation rules, mask-based control
flow linearization, and shape-directed instruction transformation.

``vectorize_module`` is the entry point used by the compilation drivers
(``repro.driver``): it can be placed anywhere in the scalar optimization
pipeline, which is the integration property the paper argues for.
"""

from typing import Dict, List, Optional

from .. import faultinject, telemetry
from ..diagnostics import CompileError, ReproError
from ..ir.module import Function, Module
from ..ir.verifier import verify_function
from ..passes import constant_fold, dce, loop_simplify, mem2reg, simplify_cfg
from ..passes.clone import clone_function
from ..passes.inline import inline_function_calls
from .scalarize import ScalarizeError, scalarize_spmd_function
from .shape import Shape
from .shapes import ShapeAnalysis
from .transform import VectorizeConfig, VectorizeError, Vectorizer

__all__ = [
    "Shape",
    "ShapeAnalysis",
    "VectorizeConfig",
    "VectorizeError",
    "Vectorizer",
    "vectorize_function",
    "vectorize_module",
]


def vectorize_function(
    module: Module, function: Function, config: Optional[VectorizeConfig] = None
) -> Function:
    """Vectorize one SPMD-annotated function and splice it into the module.

    The scalar original is kept (renamed ``<name>.scalarref``) for
    inspection; every call site is rewired to the vector version, which
    takes over the original name.
    """
    config = config or VectorizeConfig()
    faultinject.maybe_fail("vectorize", function.name)

    # Normalize: promote locals to SSA, fold, canonicalize loops.  The pass
    # itself is position-independent; this is just the usual -O pipeline
    # that would have run anyway.
    inline_function_calls(function)
    mem2reg(function)
    constant_fold(function)
    dce(function)
    simplify_cfg(function)
    loop_simplify(function)
    verify_function(function)

    analysis = ShapeAnalysis(
        function,
        function.spmd.gang_size,
        assume_nsw=config.assume_nsw,
        enabled=config.enable_shape_analysis,
    )
    vectorizer = Vectorizer(module, function, analysis, config)
    vectorized = vectorizer.run()
    constant_fold(vectorized)
    dce(vectorized)
    verify_function(vectorized)

    name = function.name
    del module.functions[name]
    function.name = name + ".scalarref"
    module.functions[function.name] = function
    vectorized.name = name
    module.functions[name] = vectorized
    function.replace_all_uses_with(vectorized)
    vectorized.attrs["parsimony_warnings"] = vectorizer.warnings

    counters = {
        "shapes": _shape_counts(analysis),
        "memory_forms": dict(vectorizer.memform_counts),
        "mask_ops": _mask_op_counts(vectorized),
    }
    vectorized.attrs["parsimony_telemetry"] = counters
    telemetry.record_vectorization(
        name,
        function.spmd.gang_size,
        counters["shapes"],
        counters["memory_forms"],
        counters["mask_ops"],
        vectorizer.warnings,
    )
    return vectorized


def _shape_counts(analysis: ShapeAnalysis) -> Dict[str, int]:
    """Classify every analyzed value as uniform / indexed / varying (§4.2.1)."""
    counts = {"uniform": 0, "indexed": 0, "varying": 0}
    for shape in analysis.shapes.values():
        if shape.is_uniform:
            counts["uniform"] += 1
        elif shape.is_indexed:
            counts["indexed"] += 1
        else:
            counts["varying"] += 1
    return counts


def _mask_op_counts(function: Function) -> Dict[str, int]:
    """Mask operations in the emitted code: explicit mask tests plus
    mask-conditioned blends (vector-i1 selects from linearization)."""
    counts: Dict[str, int] = {}
    for instr in function.instructions():
        op = instr.opcode
        if op in ("mask_any", "mask_all", "mask_popcnt"):
            counts[op] = counts.get(op, 0) + 1
        elif op == "select":
            cond = instr.operands[0]
            if cond.type.is_vector:
                counts["blend_select"] = counts.get("blend_select", 0) + 1
        elif op in ("vload", "vstore", "gather", "scatter"):
            counts["masked_memory"] = counts.get("masked_memory", 0) + 1
    return counts


def vectorize_module(
    module: Module, config: Optional[VectorizeConfig] = None,
    strict: bool = False,
) -> List[Function]:
    """Run the Parsimony pass over every SPMD-annotated function.

    Graceful degradation (the pass "can be placed anywhere in the
    optimization pipeline", §4.2 — so it must never take the build down):
    when vectorizing one function fails for *any* reason — unsupported
    construct, shape-analysis inconsistency, SMT layer failure, verifier
    rejection of the vectorized output — that function alone falls back
    to a correct sequential lane loop (see :mod:`.scalarize`), the
    failure is recorded in :mod:`repro.telemetry`, and the remaining
    functions still vectorize.  ``strict=True`` disables the fallback and
    re-raises the first failure (for tests and debugging).

    The only failure that still surfaces as a :class:`CompileError` is a
    function that can *neither* vectorize *nor* scalarize (a cross-lane
    horizontal intrinsic in a body the vectorizer rejected): there is no
    correct code to emit for it.
    """
    results = []
    for function in list(module.functions.values()):
        if function.spmd is None or function.name.endswith(".scalarref"):
            continue
        name = function.name
        # Pristine snapshot: vectorize_function mutates the input in place
        # (inlining, mem2reg, ...) before building the vector body, so the
        # fallback must restore from an untouched copy.
        pristine = clone_function(function, name + ".fallback")
        try:
            results.append(vectorize_function(module, function, config))
        except ScalarizeError:
            raise
        except Exception as exc:
            if strict:
                raise
            _fall_back_to_scalar(module, name, function, pristine, exc)
        else:
            _discard_clone(pristine)
    return results


def _discard_clone(clone: Function) -> None:
    """Unregister a never-used pristine clone's def-use edges (its
    instructions hold uses of constants/externals shared with the module)."""
    for block in list(clone.blocks):
        clone.remove_block(block)


def _fall_back_to_scalar(
    module: Module, name: str, function: Function, pristine: Function,
    exc: Exception,
) -> None:
    """Replace a failed vectorization with a scalarized lane loop."""
    gang_size = pristine.spmd.gang_size
    reason = _fallback_reason(exc)

    # Undo whatever the failed attempt left in the module.  The splice in
    # vectorize_function happens only after verification, so normally the
    # module still maps ``name`` to the (mutated) original; handle the
    # post-splice window too for completeness.
    stale = set()
    for key in (name, name + ".scalarref"):
        left = module.functions.pop(key, None)
        if left is not None and left is not pristine:
            stale.add(left)
    stale.add(function)

    pristine.name = name
    module.add_function(pristine)
    for old in stale:
        old.replace_all_uses_with(pristine)  # rewire gang-loop call sites
        _discard_clone(old)

    try:
        scalarize_spmd_function(pristine)
    except ScalarizeError as blocked:
        raise CompileError(
            f"@{name}: vectorization failed ({reason['message']}) and no "
            f"scalar fallback exists: {blocked.diagnostic.message}",
            stage="vectorizer",
            function=name,
            detail={"vectorize_error": reason, **blocked.diagnostic.detail},
        ) from exc

    pristine.attrs["parsimony_fallback"] = reason
    telemetry.record_fallback(name, gang_size, reason)


def _fallback_reason(exc: Exception) -> Dict[str, object]:
    """Structured record of why a function fell back to scalar code."""
    if isinstance(exc, ReproError):
        diag = exc.diagnostic
        stage = diag.stage or "vectorizer"
        message = diag.message.splitlines()[0] if diag.message else ""
        detail = dict(diag.detail)
    else:
        stage = "vectorizer"
        message = (str(exc) or type(exc).__name__).splitlines()[0]
        detail = {}
    return {
        "stage": stage,
        "error": type(exc).__name__,
        "message": message,
        "detail": detail,
    }
