"""Known-facts lattice for shape-rule preconditions (§4.2.2).

Several shape transformations are only valid under side conditions — the
paper's example: ``(base + off) & m == (base & m) + (off & m)`` holds when
``m`` is a low-bit mask, ``base`` is aligned to it, and the offsets fit
inside it.  The paper tracks such facts as z3 model constraints and checks
each rule's precondition online at compile time.

We track the two fact kinds those preconditions need:

* **alignment** — the largest known power of two dividing the value;
* **range** — a conservative ``[lo, hi]`` interval (in unsigned terms for
  the value's width).

Facts propagate alongside shapes in the same fixpoint.  ``psim.*`` ABI
values seed the interesting cases: a gang's base thread id is always a
multiple of the gang size, and ``psim.lane_num()`` is in ``[0, G)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Facts", "TOP", "meet", "from_constant"]


@dataclass(frozen=True)
class Facts:
    """Alignment and range knowledge about one scalar value."""

    #: Largest power of two known to divide the value (1 = no knowledge).
    align: int = 1
    #: Inclusive unsigned range, or None when unknown.
    range: Optional[Tuple[int, int]] = None

    def in_range(self, lo: int, hi: int) -> bool:
        return self.range is not None and lo <= self.range[0] and self.range[1] <= hi

    def aligned_to(self, n: int) -> bool:
        return n >= 1 and self.align % n == 0


TOP = Facts()


def from_constant(value: int) -> Facts:
    align = value & -value if value > 0 else (1 << 63 if value == 0 else 1)
    return Facts(align=max(1, align), range=(value, value))


def meet(a: Facts, b: Facts) -> Facts:
    """Join point (phi) combination: keep only what both agree on."""
    align = _gcd_pow2(a.align, b.align)
    if a.range is not None and b.range is not None:
        range_ = (min(a.range[0], b.range[0]), max(a.range[1], b.range[1]))
    else:
        range_ = None
    return Facts(align=align, range=range_)


def _gcd_pow2(a: int, b: int) -> int:
    return min(a & -a, b & -b)


def add(a: Facts, b: Facts) -> Facts:
    align = _gcd_pow2(a.align, b.align)
    range_ = None
    if a.range is not None and b.range is not None:
        range_ = (a.range[0] + b.range[0], a.range[1] + b.range[1])
    return Facts(align=align, range=range_)


def mul(a: Facts, b: Facts) -> Facts:
    align = a.align * b.align
    range_ = None
    if a.range is not None and b.range is not None and min(a.range[0], b.range[0]) >= 0:
        range_ = (a.range[0] * b.range[0], a.range[1] * b.range[1])
    return Facts(align=align, range=range_)


def shl(a: Facts, amount: int) -> Facts:
    range_ = None
    if a.range is not None:
        range_ = (a.range[0] << amount, a.range[1] << amount)
    return Facts(align=a.align << amount, range=range_)


def and_mask(a: Facts, mask: int) -> Facts:
    """Result facts of ``a & mask`` for a low-bit mask."""
    hi = mask if a.range is None else min(mask, a.range[1])
    return Facts(align=1, range=(0, hi))
