"""Value shapes for the Parsimony vectorizer (§4.2.2).

Parsimony classifies every SSA value into one of two categories:

* **indexed** — representable as ``base + offset[lane]`` where ``base`` is
  a (possibly runtime) scalar common to all lanes and the per-lane offsets
  are compile-time constants.  *Uniform* (all offsets zero) and *strided*
  (offsets ``k·lane``) values are special cases; keeping the broader
  indexed category captures more patterns (e.g. lane permutations of a
  stride, or the blocked per-lane layout of privatized allocas).
* **varying** — everything else; stored as a vector value in the IR.

Indexed values keep their base in a scalar register and their offsets as
compiler metadata (exactly the paper's representation), which is what lets
the transformer emit scalar instructions, scalar branches, and packed
memory accesses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Shape", "uniform", "indexed", "varying", "lane_shape"]


class Shape:
    """Shape of one SSA value across the gang's lanes."""

    __slots__ = ("offsets",)

    def __init__(self, offsets: Optional[np.ndarray]):
        #: ``None`` means varying; otherwise an int64 array of per-lane offsets.
        self.offsets = offsets

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def uniform(lanes: int) -> "Shape":
        return Shape(np.zeros(lanes, dtype=np.int64))

    @staticmethod
    def indexed(offsets) -> "Shape":
        return Shape(np.asarray(offsets, dtype=np.int64))

    @staticmethod
    def varying() -> "Shape":
        return Shape(None)

    # -- predicates --------------------------------------------------------------

    @property
    def is_varying(self) -> bool:
        return self.offsets is None

    @property
    def is_indexed(self) -> bool:
        return self.offsets is not None

    @property
    def is_uniform(self) -> bool:
        return self.offsets is not None and not self.offsets.any()

    def stride(self) -> Optional[int]:
        """The constant stride if offsets are ``k·lane``, else ``None``."""
        if self.offsets is None or len(self.offsets) == 0:
            return None
        lanes = np.arange(len(self.offsets), dtype=np.int64)
        if len(self.offsets) == 1:
            return int(self.offsets[0]) if self.offsets[0] == 0 else None
        k = int(self.offsets[1]) - int(self.offsets[0])
        if np.array_equal(self.offsets, self.offsets[0] + k * lanes):
            return k
        return None

    def same_as(self, other: "Shape") -> bool:
        if self.is_varying or other.is_varying:
            return self.is_varying and other.is_varying
        return np.array_equal(self.offsets, other.offsets)

    def __repr__(self) -> str:
        if self.is_varying:
            return "varying"
        if self.is_uniform:
            return "uniform"
        stride = self.stride()
        if stride is not None:
            return f"indexed(stride={stride})"
        return f"indexed({self.offsets.tolist()})"


def uniform(lanes: int) -> Shape:
    return Shape.uniform(lanes)


def indexed(offsets) -> Shape:
    return Shape.indexed(offsets)


def varying() -> Shape:
    return Shape.varying()


def lane_shape(lanes: int) -> Shape:
    """The shape of ``psim.lane_num()``: indexed with stride 1 (§4.2.2)."""
    return Shape.indexed(np.arange(lanes, dtype=np.int64))
