"""Shape (divergence) analysis for SPMD functions (§4.2.2).

Classifies every SSA value in an SPMD-annotated function as *indexed*
(scalar base + compile-time per-lane offsets; uniform and strided are
special cases) or *varying*, tracking alignment/range facts about bases so
that conditional rules (verified offline in ``repro.vectorizer.rules``)
can be applied soundly.

The analysis is the paper's optimistic iterative scheme: values start
unknown, instruction transfer functions are applied in reverse postorder,
speculated shapes are recomputed until a fixpoint.  Control-flow
divergence is folded in: phis at joins of divergent branches, header phis
of loops with divergent exits, and values escaping divergent loops are
all forced varying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..ir.cfg import DominatorTree, Loop, find_loops, reverse_postorder
from ..ir.instructions import FLOAT_BINOPS, INT_BINOPS, Instruction
from ..ir.module import BasicBlock, ExternalFunction, Function
from ..ir.types import VectorType
from ..ir.values import Argument, Constant, UndefValue, Value
from . import facts as F
from .facts import Facts, TOP
from .shape import Shape, lane_shape

__all__ = ["ShapeAnalysis", "ABI_MAX_THREADS_LOG2", "widen_indexed_shape"]


def widen_indexed_shape(shape: Shape, batch: int, gang_delta: int) -> Shape:
    """Batch-widening metadata for an indexed shape (gang-batching layer).

    A G-lane indexed value ``base + offsets[lane]`` executed for ``batch``
    consecutive gangs becomes a G×B-lane indexed value whose per-gang
    blocks are shifted copies of the original offsets: gang ``k`` sees
    ``base + offsets[lane] + k * gang_delta``, where ``gang_delta`` is the
    value's per-gang stride (its ``__gang_base`` coefficient times the
    gang size, in the value's own units).  Varying shapes have no offset
    table to widen and are returned unchanged.
    """
    if shape.is_varying:
        return shape
    blocks = [shape.offsets + np.int64(k) * np.int64(gang_delta) for k in range(batch)]
    return Shape.indexed(np.concatenate(blocks))

#: ABI guarantee used to seed range facts: num_spmd_threads < 2**48.
ABI_MAX_THREADS_LOG2 = 48

_MAX_ITERATIONS = 50


class ShapeAnalysis:
    """Runs the analysis over one SPMD function; results in ``shapes``."""

    def __init__(self, function: Function, gang_size: int, assume_nsw: bool = True,
                 enabled: bool = True):
        self.function = function
        self.gang = gang_size
        self.assume_nsw = assume_nsw
        self.enabled = enabled
        self.shapes: Dict[Value, Shape] = {}
        self.facts: Dict[Value, Facts] = {}
        self.divergent_branches: Set[Instruction] = set()
        self.divergent_loops: List[Loop] = []
        self._range_widenings: Dict[Value, int] = {}
        self.soa_allocas: Set[Instruction] = self._find_soa_allocas(function)
        self.run()

    @staticmethod
    def _rule_ok(name: str) -> bool:
        """Conditional rules apply only while their offline verification is
        usable; an SMT timeout/absence degrades the value to varying
        instead of failing the compile (the guard caches per process)."""
        from .smt import rule_usable

        return rule_usable(name)

    @staticmethod
    def _find_soa_allocas(function: Function) -> Set[Instruction]:
        """Private allocas safe for the SoA layout swizzle (§4.2.3): every
        use is a direct gep whose result feeds only loads/stores."""
        result: Set[Instruction] = set()
        for instr in function.instructions():
            if instr.opcode != "alloca":
                continue
            ok = True
            for user, idx in instr.uses:
                if not (user.opcode == "gep" and idx == 0):
                    ok = False
                    break
                for guser, gidx in user.uses:
                    if guser.opcode == "load":
                        continue
                    if guser.opcode == "store" and gidx == 1:
                        continue
                    ok = False
                    break
                if not ok:
                    break
            if ok and instr.uses:
                result.add(instr)
        return result

    # -- public helpers ---------------------------------------------------------------

    def shape_of(self, value: Value) -> Shape:
        if isinstance(value, Constant):
            return Shape.uniform(self.gang)
        if isinstance(value, UndefValue):
            return Shape.uniform(self.gang)
        if isinstance(value, Argument):
            return Shape.uniform(self.gang)
        return self.shapes.get(value, Shape.varying())

    def facts_of(self, value: Value) -> Facts:
        if isinstance(value, Constant) and value.type.is_int:
            return F.from_constant(value.value)
        return self.facts.get(value, TOP)

    def is_uniform(self, value: Value) -> bool:
        return self.shape_of(value).is_uniform

    # -- driver -------------------------------------------------------------------------

    def run(self) -> None:
        function = self.function
        spmd = function.spmd
        # Seed argument shapes/facts: all arguments are scalars shared by the
        # gang (uniform).  The gang-base argument is a multiple of the gang
        # size and bounded by the ABI thread-count guarantee.
        for i, arg in enumerate(function.args):
            self.shapes[arg] = Shape.uniform(self.gang)
            if spmd is not None and i == spmd.base_arg_index:
                self.facts[arg] = Facts(
                    align=self.gang, range=(0, 1 << ABI_MAX_THREADS_LOG2)
                )
            else:
                self.facts[arg] = TOP

        rpo_blocks = reverse_postorder(function)
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for block in rpo_blocks:
                for instr in block.instructions:
                    new_shape, new_facts = self._transfer(instr)
                    changed |= self._update(instr, new_shape, new_facts)
            if not changed:
                break

        self._apply_control_divergence(rpo_blocks)

    def _update(self, value: Value, shape: Optional[Shape], facts: Facts) -> bool:
        if shape is None:
            return False
        old = self.shapes.get(value)
        if old is not None:
            if not old.same_as(shape):
                # Monotone meet: disagreement between iterations -> varying.
                shape = Shape.varying()
        old_facts = self.facts.get(value)
        if old_facts is not None and old_facts != facts:
            merged = F.meet(old_facts, facts)
            count = self._range_widenings.get(value, 0) + 1
            self._range_widenings[value] = count
            if count > 3:
                merged = Facts(align=merged.align, range=None)  # widen
            facts = merged
        changed = (
            old is None
            or not old.same_as(shape)
            or old_facts is None
            or old_facts != facts
        )
        self.shapes[value] = shape
        self.facts[value] = facts
        return changed

    # -- transfer functions ---------------------------------------------------------------

    def _transfer(self, instr: Instruction):
        """Returns (shape, facts-of-base) for one instruction, or (None, _)
        if the instruction produces no value."""
        if instr.type.is_void:
            return None, TOP

        op = instr.opcode
        ops = instr.operands

        if not self.enabled:
            # Even with shape analysis ablated, lane_num's shape is part of
            # its semantics (the transformer lowers it via its shape).
            if op == "call":
                callee = ops[0]
                if isinstance(callee, ExternalFunction) and callee.name == "psim.lane_num":
                    return lane_shape(self.gang), TOP
            return Shape.varying(), TOP

        if op == "phi":
            return self._transfer_phi(instr)
        if op == "call":
            return self._transfer_call(instr)
        if op == "alloca":
            # Privatization (§4.2.3).  When every access is a direct
            # gep+load/store, the layout is swizzled to struct-of-arrays
            # ("a more optimized implementation could also swizzle the data
            # layout from AoS into SoA to avoid unnecessary gather/scatter
            # operations on stack-allocated values"): lanes sit at stride
            # elem_size, so a uniform index yields a packed access.  Escaping
            # allocas fall back to the blocked per-lane layout.
            size = instr.type.pointee.size_bytes()
            if instr in self.soa_allocas:
                offsets = np.arange(self.gang, dtype=np.int64) * size
            else:
                per_thread = size * instr.attrs.get("count", 1)
                offsets = np.arange(self.gang, dtype=np.int64) * per_thread
            return Shape.indexed(offsets), Facts(align=64)
        if op == "load":
            addr = self.shape_of(ops[0])
            return (Shape.uniform(self.gang) if addr.is_uniform else Shape.varying()), TOP
        if op == "gep":
            return self._transfer_gep(instr)
        if op in INT_BINOPS:
            return self._transfer_int_binop(instr)
        if op in ("trunc", "zext", "sext", "bitcast", "ptrtoint", "inttoptr"):
            return self._transfer_cast(instr)
        if op == "select":
            cond = self.shape_of(ops[0])
            a, b = self.shape_of(ops[1]), self.shape_of(ops[2])
            if cond.is_uniform and a.is_indexed and a.same_as(b):
                return Shape(a.offsets), F.meet(self.facts_of(ops[1]), self.facts_of(ops[2]))
            return Shape.varying(), TOP
        if op == "atomicrmw":
            return Shape.varying(), TOP

        # Default: uniform in, uniform out (deterministic scalar ops);
        # anything else is varying.  Covers float binops, compares, unary
        # ops, float casts, and the remaining misc instructions.
        if all(self.shape_of(o).is_uniform for o in ops if not isinstance(o, BasicBlock)):
            return Shape.uniform(self.gang), TOP
        return Shape.varying(), TOP

    def _transfer_phi(self, instr: Instruction):
        shape: Optional[Shape] = None
        fact: Optional[Facts] = None
        for value, _block in instr.phi_incoming():
            if isinstance(value, UndefValue):
                continue
            incoming = self.shapes.get(value) if isinstance(value, Instruction) else self.shape_of(value)
            if incoming is None:
                continue  # optimistic: speculate on not-yet-computed inputs
            in_fact = self.facts_of(value)
            if shape is None:
                shape, fact = incoming, in_fact
            else:
                fact = F.meet(fact, in_fact)
                if not shape.same_as(incoming):
                    shape = Shape.varying()
        if shape is None:
            return None, TOP  # all inputs unknown; retry next iteration
        return shape, fact or TOP

    def _transfer_call(self, instr: Instruction):
        callee = instr.operands[0]
        args = instr.operands[1:]
        if isinstance(callee, ExternalFunction):
            name = callee.name
            if name == "psim.lane_num":
                return lane_shape(self.gang), Facts(align=1 << 62, range=(0, 0))
            if name.startswith("psim.reduce_") or name in ("psim.any", "psim.all", "psim.sad"):
                return Shape.uniform(self.gang), TOP
            if name.startswith("psim.broadcast."):
                if self.shape_of(args[1]).is_uniform:
                    return Shape.uniform(self.gang), TOP
                return Shape.varying(), TOP
            if name.startswith("psim.shuffle."):
                if all(self.shape_of(a).is_uniform for a in args):
                    return Shape.uniform(self.gang), TOP
                return Shape.varying(), TOP
            if name.startswith("ml."):
                if all(self.shape_of(a).is_uniform for a in args):
                    return Shape.uniform(self.gang), TOP
                return Shape.varying(), TOP
            return Shape.varying(), TOP
        return Shape.varying(), TOP  # serialized scalar call: per-lane results

    def _transfer_gep(self, instr: Instruction):
        ptr, idx = instr.operands
        ptr_s, idx_s = self.shape_of(ptr), self.shape_of(idx)
        if ptr_s.is_varying or idx_s.is_varying:
            return Shape.varying(), TOP
        size = instr.type.pointee.size_bytes()
        if isinstance(ptr, Instruction) and ptr in self.soa_allocas:
            # SoA private array: element idx of lane l lives at
            # base + (idx*G + l)*size; the scalar base clone scales idx by G.
            size = size * self.gang
            offsets = ptr_s.offsets + idx_s.offsets * size
        else:
            offsets = ptr_s.offsets + idx_s.offsets * size
        fact = F.add(self.facts_of(ptr), F.mul(self.facts_of(idx), F.from_constant(size)))
        return Shape.indexed(offsets), fact

    def _transfer_int_binop(self, instr: Instruction):
        op = instr.opcode
        a, b = instr.operands
        sa, sb = self.shape_of(a), self.shape_of(b)
        fa, fb = self.facts_of(a), self.facts_of(b)
        if sa.is_varying or sb.is_varying:
            return Shape.varying(), TOP
        if sa.is_uniform and sb.is_uniform:
            return Shape.uniform(self.gang), self._uniform_binop_facts(op, fa, fb, a, b)

        # At least one side is non-trivially indexed.
        if op == "add":  # rule: add_indexed
            return Shape.indexed(sa.offsets + sb.offsets), F.add(fa, fb)
        if op == "sub":  # rule: sub_indexed
            return Shape.indexed(sa.offsets - sb.offsets), Facts()
        if op == "mul":  # rule: mul_const_offset_scale (needs a constant side)
            for x, sx, other, s_other in ((a, sa, b, sb), (b, sb, a, sa)):
                if isinstance(x, Constant) and sx.is_uniform:
                    c = x.as_signed()
                    return Shape.indexed(s_other.offsets * c), F.mul(
                        self.facts_of(other), F.from_constant(abs(int(c)))
                    )
            return Shape.varying(), TOP
        if op == "shl":  # rule: shl_const
            if isinstance(b, Constant) and sb.is_uniform:
                k = int(b.value)
                return Shape.indexed(sa.offsets << k), F.shl(fa, k)
            return Shape.varying(), TOP
        if op == "xor":  # rule: xor_low_mask
            if not self._rule_ok("xor_low_mask"):
                return Shape.varying(), TOP
            for x, sx, s_other, f_other in ((b, sb, sa, fa), (a, sa, sb, fb)):
                if isinstance(x, Constant) and sx.is_uniform:
                    m = int(x.value)
                    if m <= 0:
                        continue
                    k = m.bit_length()
                    offs = s_other.offsets
                    if f_other.aligned_to(1 << k) and offs.min() >= 0:
                        # The emitted scalar base is `b ^ m` == `b + m` (b is
                        # aligned past m), so offsets are (o ^ m) - m.
                        return Shape.indexed((offs ^ m) - m), Facts(align=1)
            return Shape.varying(), TOP
        if op == "and":  # rule: and_low_mask
            if not self._rule_ok("and_low_mask"):
                return Shape.varying(), TOP
            for x, sx, other, s_other, f_other in (
                (b, sb, a, sa, fa), (a, sa, b, sb, fb)
            ):
                if isinstance(x, Constant) and sx.is_uniform:
                    m = int(x.value)
                    if m > 0 and (m & (m + 1)) == 0:  # low-bit mask 2^k - 1
                        k = m.bit_length()
                        offs = s_other.offsets
                        if f_other.aligned_to(1 << k) and offs.min() >= 0 and offs.max() < (1 << k):
                            return Shape.indexed(offs), F.and_mask(f_other, m)
            return Shape.varying(), TOP
        if op == "lshr":
            if isinstance(b, Constant) and sb.is_uniform:
                k = int(b.value)
                offs = sa.offsets
                no_wrap = fa.range is not None and fa.range[1] + int(offs.max()) < (1 << 64)
                if fa.aligned_to(1 << k) and no_wrap:
                    if offs.min() >= 0 and offs.max() < (1 << k) \
                            and self._rule_ok("lshr_const_absorb"):
                        return Shape.uniform(self.gang), Facts()
                    if not (offs % (1 << k)).any() \
                            and self._rule_ok("lshr_const_aligned"):
                        return Shape.indexed(offs >> k), Facts()
            return Shape.varying(), TOP
        if op == "udiv":  # rule: udiv_const_aligned
            if isinstance(b, Constant) and sb.is_uniform:
                d = int(b.value)
                offs = sa.offsets
                no_wrap = fa.range is not None and fa.range[1] + int(offs.max()) < (1 << 64)
                if d > 0 and fa.align % d == 0 and offs.min() >= 0 and no_wrap \
                        and self._rule_ok("udiv_const_aligned"):
                    return Shape.indexed(offs // d), Facts()
            return Shape.varying(), TOP
        return Shape.varying(), TOP

    def _uniform_binop_facts(self, op: str, fa: Facts, fb: Facts, a: Value, b: Value) -> Facts:
        if op == "add":
            return F.add(fa, fb)
        if op == "mul":
            return F.mul(fa, fb)
        if op == "shl" and isinstance(b, Constant):
            return F.shl(fa, int(b.value))
        if op == "and" and isinstance(b, Constant):
            m = int(b.value)
            if m > 0 and (m & (m + 1)) == 0:
                return F.and_mask(fa, m)
        return TOP

    def _transfer_cast(self, instr: Instruction):
        op = instr.opcode
        src = instr.operands[0]
        s, f = self.shape_of(src), self.facts_of(src)
        if s.is_varying:
            return Shape.varying(), TOP
        if s.is_uniform:
            return Shape.uniform(self.gang), f
        if op in ("bitcast", "ptrtoint", "inttoptr"):
            return Shape(s.offsets), f
        if op == "trunc":  # rule: trunc (unconditional, modular)
            return Shape(s.offsets), Facts()
        if op == "zext":  # rule: zext_no_wrap
            bits = src.type.bits
            offs = s.offsets
            if (
                f.range is not None
                and offs.min() >= 0
                and f.range[1] + int(offs.max()) < (1 << bits)
                and self._rule_ok("zext_no_wrap")
            ):
                return Shape(offs), f
            return Shape.varying(), TOP
        if op == "sext":  # rule: sext_no_signed_wrap (or C's signed-overflow UB)
            bits = src.type.bits
            offs = s.offsets
            if self.assume_nsw:
                return Shape(offs), f
            if (
                f.range is not None
                and f.range[1] + int(offs.max()) < (1 << (bits - 1))
                and f.range[0] + int(offs.min()) >= 0
                and self._rule_ok("sext_no_signed_wrap")
            ):
                return Shape(offs), f
            return Shape.varying(), TOP
        return Shape.varying(), TOP

    # -- control-flow divergence --------------------------------------------------------

    def _apply_control_divergence(self, rpo_blocks: List[BasicBlock]) -> None:
        """Taint phis joined under divergent branches and values escaping
        divergent loops, iterating until stable (taints can cascade)."""
        function = self.function
        loops = find_loops(function)
        block_set = set(rpo_blocks)

        for _ in range(_MAX_ITERATIONS):
            changed = False

            self.divergent_branches = {
                block.terminator
                for block in rpo_blocks
                if block.terminator is not None
                and block.terminator.opcode == "condbr"
                and not self.shape_of(block.terminator.operands[0]).is_uniform
            }

            # Phis at joins influenced by a divergent branch become varying.
            influenced = self._influenced_join_blocks(rpo_blocks)
            for block in influenced:
                for phi in block.phis():
                    if not self.shape_of(phi).is_varying:
                        self.shapes[phi] = Shape.varying()
                        self.facts[phi] = TOP
                        changed = True

            # Divergent loops: header phis and escaping values become varying.
            self.divergent_loops = []
            for loop in loops:
                divergent = any(
                    block.terminator in self.divergent_branches
                    for block in loop.blocks
                    if any(s not in loop.blocks or s is loop.header for s in block.successors)
                )
                if not divergent:
                    continue
                self.divergent_loops.append(loop)
                taint_phis = list(loop.header.phis())
                for exit_block in loop.exit_blocks():
                    # Which lanes arrive via which exit differs per lane, so
                    # exit-block phis of divergent loops are varying even
                    # when every incoming value is uniform.
                    taint_phis.extend(exit_block.phis())
                for phi in taint_phis:
                    if not self.shape_of(phi).is_varying:
                        self.shapes[phi] = Shape.varying()
                        self.facts[phi] = TOP
                        changed = True
                for block in loop.blocks:
                    for instr in block.instructions:
                        if instr.type.is_void or self.shape_of(instr).is_varying:
                            continue
                        escapes = any(
                            user.parent not in loop.blocks
                            for user in instr.users
                            if isinstance(user, Instruction) and user.parent in block_set
                        )
                        if escapes:
                            self.shapes[instr] = Shape.varying()
                            self.facts[instr] = TOP
                            changed = True

            if changed:
                # Re-run the value fixpoint so taint propagates through uses.
                for _ in range(_MAX_ITERATIONS):
                    inner_changed = False
                    for block in rpo_blocks:
                        for instr in block.instructions:
                            new_shape, new_facts = self._transfer(instr)
                            inner_changed |= self._update(instr, new_shape, new_facts)
                    if not inner_changed:
                        break
            else:
                return

    def _influenced_join_blocks(self, rpo_blocks: List[BasicBlock]) -> Set[BasicBlock]:
        """Blocks whose phis are sync-dependent on some divergent branch:
        every block reachable from the branch's targets before control
        reconverges (conservatively: before reaching a block that dominates
        all remaining paths — approximated by collecting all blocks
        reachable from both targets)."""
        influenced: Set[BasicBlock] = set()
        for branch in self.divergent_branches:
            reach = [self._forward_reach(t) for t in branch.successors()]
            both = reach[0] & reach[1] if len(reach) == 2 else set()
            influenced |= both
            # Any join of paths originating at the divergent branch.
            for target_reach in reach:
                for block in target_reach:
                    if len(block.predecessors) > 1 and block in both:
                        influenced.add(block)
        return {b for b in influenced if b.phis()}

    @staticmethod
    def _forward_reach(start: BasicBlock) -> Set[BasicBlock]:
        seen: Set[BasicBlock] = set()
        stack = [start]
        while stack:
            block = stack.pop()
            if block in seen:
                continue
            seen.add(block)
            stack.extend(block.successors)
        return seen
