"""Whole-kernel codegen: one generated Python function per IR function.

The engine ladder so far (reference → predecoded thunks →
superinstruction windows → gang batching) still pays a Python-level
fetch/decode step at every basic-block boundary: a dict lookup for the
decoded block, per-phi resolver calls, tuple unpacks per body entry, and
a terminator dispatch.  This module retires that loop entirely — at
decode time it *linearizes* a function's structurized CFG into a single
generated Python function over the live payloads:

* every SSA value becomes a Python local (``v7``), so the per-value
  ``env`` dict disappears along with its reads and writes;
* natural loops become native ``while True:`` loops whose exit edges
  lower to ``break`` — for vectorized divergent loops the loop condition
  is the ``mask_any`` lane-mask reduction, i.e. the classic
  ``while mask.any():`` shape — and backedges lower to a parallel phi
  assignment plus ``continue``.  Loops with **several distinct exit
  targets** (early ``return`` under a serial loop, multi-level
  ``break``/``continue``) lower through a *dispatch-variable exit
  merge*: each exiting edge records a small integer before ``break`` and
  an ``if``/``elif`` chain after the loop resumes the right
  continuation, unwinding one Python loop level at a time;
* forward branches lower to ``if``/``else`` on the (already
  mask-converted) scalar condition, with the structural join computed
  from the immediate postdominator.  A trailing single-use scalar
  compare or mask reduction feeding the ``condbr`` folds straight into
  the ``if`` header (the fused engine's ``cmp_condbr`` pattern) instead
  of materializing a 0/1 local;
* the superinstruction window emitter's scalar expression inliner
  (:meth:`Interpreter._inline_expr` — inlined f32 rounding, literal int
  masks) is reused verbatim, and vector ops additionally inline to raw
  numpy expressions (``v34 * v34`` instead of an impl-closure call) —
  the whole body runs under a saved/restored ``np.seterr(all="ignore")``
  so the inlined forms match the impls' per-call ``errstate`` guards;
* gang-batched blocks inline their narrow-prototype charging
  (multiplicity × per-item cost) exactly as the reference engine
  interprets it; divergent-loop activity state lives in *specialized
  Python locals* (``_a0``/``_p0``) with the batch factor, gang width,
  and mask reshape emitted as literals (batch-factor specialization) —
  the activity-dict protocol only remains as a fallback for shapes the
  specializer cannot prove.

Accounting contract
-------------------

``ExecStats`` stays bit-identical to the reference engine for every run
that completes, and the trap-replay protocol covers the rest:

* all charges of one basic block merge into a single prologue, and the
  accumulators themselves are **function-local**: cycles (``_cy``),
  instructions (``_ni``), and one integer local per distinct counter key
  (``_k0``…) accumulate in plain Python locals and flush into
  ``ExecStats`` once, in the function's ``finally``.  Cycle costs are
  dyadic rationals well inside float53 (the window emitter's bulk-charge
  argument), so the locally-accumulated sums are bit-identical to the
  reference engine's sequential accumulation under *any* association;
  instruction and opcode counts are integers and commute.  Counter keys
  flush only when nonzero, so a key the reference engine never created
  never appears.  Around an internal call the accumulators flush and
  reset (the callee charges ``ExecStats`` directly), and the budget
  headroom re-derives;
* batched blocks fold their narrow-prototype charges the same way,
  grouped by multiplicity spec: static multiplicities fold at emit time,
  divergent ones resolve through the specialized activity locals
  (activity is constant within a block — it only changes at backedge
  commits);
* the per-block budget check compares ``_ni`` against the headroom
  ``_rem = max_instructions - stats.instructions`` captured at entry
  (and after each internal call), which is exactly the reference
  engine's ``instructions > limit`` predicate; the counter is monotone
  and every charging block checks, so any reference-engine budget
  crossing fires a (possibly later) check here, and a check here never
  fires unless the reference engine crossed first;
* a trap's exact trap-point stats, message, and memory effects come from
  the **replay**: the codegen engine only ever runs under
  :meth:`Interpreter._run_replayable`, which snapshots memory + stats,
  rolls back on any ``VMTrap``/``MemoryError_`` (including the partial
  flush the ``finally`` performed on the way out), and re-runs on the
  predecoded twin (``codegen=False``), whose outcome is authoritative —
  the same contract gang batching established.  The interpreter arms the
  codegen engine *only* inside that wrapper, so fault-injected and
  sharded runs (which skip the wrapper) transparently use the decoded
  engine.

Bailout taxonomy
----------------

Linearization is best-effort: any shape the structurer cannot express as
native Python control flow raises :class:`CodegenBailout` with a reason
and the function falls back to the decoded engine.  Reasons are tallied
per interpreter and surface as ``vm.codegen.bailouts`` telemetry.

Retired (now compiled): ``multi-exit-loop``, ``multi-level-break`` and
``multi-level-continue`` (dispatch-variable exit merge), ``ret`` inside
batched bodies, and mixed annotated/plain batched blocks (charged
per-instruction exactly as the reference engine does).

Kept deliberately: ``function-too-large`` / ``deep-nesting`` (size
guards), ``block-re-emitted`` (irreducible control flow the dispatch
merge cannot structure), ``no-terminator`` / ``use-before-def``
(malformed IR), ``batched-internal-call`` (an *annotated* internal call
has no narrow-prototype emission), and ``injected-fault`` (fault plans
must not be double-counted through generated code).

Caching
-------

Generated source embeds only structure (costs as literals, opcode
strings, batch factors, hoisted-name wiring); payloads and impls bind at
``exec`` time through default arguments, so the *code object* is
shareable.  Sources are cached process-wide and the compiled code
objects persist across processes via :mod:`repro.diskcache`
(``store_code``/``load_code``).  Because batch-specialized and generic
emissions of one kernel differ only in attrs (not block/instruction
counts), emission-cache entries additionally carry a **batch
fingerprint** — the ``batched`` attr plus the count of annotated
instructions — so a bailout or emission memoized against one batching
configuration never answers for another.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .. import diskcache
from ..ir.cfg import Loop, find_loops, reverse_postorder
from ..ir.instructions import REDUCE_OPS
from ..ir.module import BasicBlock, ExternalFunction, Function
from ..ir.types import FloatType, IntType, VectorType
from ..ir.values import Constant, UndefValue, Value
from ..vm.interp import (
    _GROUP_OPS,
    _budget_trap,
    _constant_payload,
    _undef_payload,
    _uses_exactly,
)
from ..vm.nputil import (
    as_unsigned,
    elem_dtype,
    signed_dtype,
    signed_view,
)
from ..vm.ops import VMTrap, gang_activity_count

__all__ = ["CodegenBailout", "emit_function", "compiled_code", "bind_code"]

#: Emission refuses functions above this static instruction count — the
#: generated source would dwarf the decode win and slow ``compile()``.
MAX_CODEGEN_INSTRS = 8000

#: Emission refuses nesting deeper than this (the CPython tokenizer caps
#: indentation at 100 levels; structured kernels sit far below this).
MAX_NESTING = 40

#: Virtual exit node for the postdominator computation.
_EXIT = object()

#: Marker line expanded into an accumulator flush+reset in :meth:`emit`
#: (the full set of counter locals is only known once emission finishes).
_FLUSH = "\x00flush"

#: Generated source → compiled code object, shared across every
#: interpreter in the process (the source embeds no payloads).
_CODE_CACHE: Dict[str, object] = {}

#: Hoisted prologue names rebuilt per interpreter (everything else in the
#: bindings is interpreter-independent or re-derivable from a recipe).
_FIXED_BINDINGS = frozenset(
    ("_s", "_c", "_interp", "_mem", "_fname", "_trap", "_exec", "_gac", "_VMTrap")
)

#: Ops whose ``_value_impl`` closure captures interpreter state (memory,
#: or the interpreter itself for cross-lane reduces) and must be rebuilt
#: when a cached emission rebinds to another interpreter; every other
#: impl closure depends only on the instruction and is shared.
_REBIND_OPS = REDUCE_OPS | frozenset(
    ("load", "store", "vload", "vstore", "gather", "scatter",
     "alloca", "atomicrmw")
)

#: Key → [(machine, cost_model, fingerprint, source, recipe, reason)]:
#: emission (linearization + postdominators) amortizes across fresh
#: interpreters — and, via the driver's ``emit_key`` stamps, across
#: fresh compile-cache clones — of the same kernel; only the prologue
#: names and the memory-capturing impl closures rebind per interpreter.
#: Stamped structural keys (tuples) live in a capped plain dict;
#: unstamped functions key the weak side so hand-built IR can't leak.
#: ``fingerprint`` guards against attrs-only batching mutations that
#: leave block/instruction counts unchanged (see :func:`_batch_fingerprint`).
_EMIT_CACHE: Dict[tuple, list] = {}
_EMIT_CACHE_CAPACITY = 512
_EMIT_CACHE_BY_FN: "weakref.WeakKeyDictionary[Function, list]" = (
    weakref.WeakKeyDictionary()
)

#: Vector-op inline templates.  Each form must be bit-identical to the
#: corresponding ops.py impl *under* ``np.seterr(all="ignore")`` — the
#: generated function installs that errstate for its whole body, exactly
#: covering the per-call ``errstate`` guards the impls carry.
_VEC_FBIN = {"fadd": "+", "fsub": "-", "fmul": "*", "fdiv": "/"}
_VEC_IBIN = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|", "xor": "^"}
#: i1 lanes are numpy bools: arithmetic degenerates to bitwise forms
#: (mirrors ops._vector_bool_binop).
_VEC_BBIN = {"and": "&", "umin": "&", "mul": "&", "smax": "&",
             "or": "|", "umax": "|",
             "xor": "^", "add": "^", "sub": "^"}
_VEC_CMP_U = {"eq": "==", "ne": "!=", "ult": "<", "ule": "<=",
              "ugt": ">", "uge": ">="}
_VEC_CMP_S = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
#: Vector fcmp inlines the ordered-mask form of ops.eval_vector_fcmp;
#: unlike the scalar table, ``one`` is safe here (the explicit
#: ``~(isnan|isnan)`` mask owns the NaN behaviour, not the operator).
_VEC_FCMP = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=",
             "ogt": ">", "oge": ">="}
#: Vector casts that are a single ``.astype`` in ops.eval_vector_cast.
_VEC_CAST_ASTYPE = frozenset(
    ("ptrtoint", "inttoptr", "trunc", "zext", "fptrunc", "fpext", "uitofp")
)

#: Scalar condbr-condition folds: predicate → raw truthy Python operator.
_COND_CMP_U = _VEC_CMP_U
_COND_CMP_S = _VEC_CMP_S
#: Ordered fcmp preds where the Python operator already yields False on
#: NaN, matching eval_scalar_fcmp's unordered→0 rule ("one" is NOT
#: foldable: Python ``nan != x`` is True but the reference returns 0).
_COND_FCMP = {"oeq": "==", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">="}


class CodegenBailout(Exception):
    """This function's CFG or opcode mix cannot be linearized; the caller
    falls back to the decoded engine and records ``reason``."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _postdominators(function: Function) -> Dict[BasicBlock, object]:
    """Immediate postdominators of the reachable CFG (Cooper–Harvey–
    Kennedy on the reverse graph, with a virtual exit joining every
    ``ret``/``unreachable`` block).  Blocks that cannot reach an exit
    (infinite loops) are absent from the result.
    """
    reachable = reverse_postorder(function)
    reachable_set = set(reachable)
    exits = [
        b for b in reachable
        if b.instructions and b.instructions[-1].opcode in ("ret", "unreachable")
    ]
    # Reverse-graph successors: CFG predecessors (restricted to reachable).
    rsucc: Dict[object, List[object]] = {
        b: [p for p in b.predecessors if p in reachable_set] for b in reachable
    }
    rsucc[_EXIT] = list(exits)

    # Postorder of the reverse graph from the virtual exit (iterative).
    visited: Set[object] = {_EXIT}
    postorder: List[object] = []
    stack: List[Tuple[object, object]] = [(_EXIT, iter(rsucc[_EXIT]))]
    while stack:
        _node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(rsucc[nxt])))
                advanced = True
                break
        if not advanced:
            postorder.append(stack.pop()[0])
    rpo = postorder[::-1]
    index = {b: i for i, b in enumerate(rpo)}
    ipdom: Dict[object, object] = {_EXIT: _EXIT}

    def intersect(b1: object, b2: object) -> object:
        while b1 is not b2:
            while index[b1] > index[b2]:
                b1 = ipdom[b1]
            while index[b2] > index[b1]:
                b2 = ipdom[b2]
        return b1

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is _EXIT:
                continue
            # Reverse-graph predecessors: CFG successors (+ the virtual
            # exit edge for exit blocks).
            preds: List[object] = [
                s for s in block.successors
                if s in reachable_set and ipdom.get(s) is not None
            ]
            if block.instructions and block.instructions[-1].opcode in (
                "ret", "unreachable"
            ):
                preds.append(_EXIT)
            if not preds:
                continue
            new = preds[0]
            for p in preds[1:]:
                new = intersect(p, new)
            if ipdom.get(block) is not new:
                ipdom[block] = new
                changed = True
    ipdom.pop(_EXIT, None)
    return ipdom


class _LoopFrame:
    """One open ``while True:`` during emission, tracking the distinct
    out-of-loop targets its body breaks to.  A single target keeps the
    plain ``break``; several get a dispatch variable patched in front of
    every break and an ``if``/``elif`` exit merge after the loop."""

    __slots__ = ("loop", "targets", "breaks")

    def __init__(self, loop: Loop):
        self.loop = loop
        self.targets: List[BasicBlock] = []
        #: ``(line_index_of_break, target_index)`` patch sites.
        self.breaks: List[Tuple[int, int]] = []

    def register(self, target: BasicBlock) -> int:
        for i, t in enumerate(self.targets):
            if t is target:
                return i
        self.targets.append(target)
        return len(self.targets) - 1


class _Emitter:
    """Linearizes one function into generated Python source + bindings."""

    def __init__(self, interp, function: Function):
        self.interp = interp
        self.fn = function
        self.fn_batched = bool(function.attrs.get("batched"))
        self.lines: List[str] = []
        self.indent = 2
        self.names: Dict[Value, str] = {}
        for i, arg in enumerate(function.args):
            self.names[arg] = f"a{i}"
        self.hoisted: Dict[str, object] = {
            "_s": interp.stats,
            "_c": interp.stats.counts,
            "_interp": interp,
            "_mem": interp.memory,
            "_fname": function.name,
            "_trap": _budget_trap,
            "_exec": interp._exec_function,
            "_gac": gang_activity_count,
            "_VMTrap": VMTrap,
        }
        self._memo: Dict[object, str] = {}
        #: Hoisted name → Instruction for ``_value_impl`` closures, which
        #: may capture this interpreter's memory and must be rebuilt when
        #: the cached emission rebinds to another interpreter.
        self.impl_instrs: Dict[str, object] = {}
        #: Stack of open Python loops (innermost last).
        self.open: List[_LoopFrame] = []
        self.open_headers: Set[BasicBlock] = set()
        self.emitted: Set[BasicBlock] = set()
        self.loops_by_header: Dict[BasicBlock, Loop] = {
            loop.header: loop for loop in find_loops(function)
        }
        self.pdom = _postdominators(function)
        #: Counter key → integer accumulator local (``_k0``…).
        self.count_locals: Dict[str, str] = {}
        self.exit_counter = 0
        self._scan_batch_shapes()

    # -- divergent-activity specialization ---------------------------------------

    def _scan_batch_shapes(self) -> None:
        """Decide whether divergent-loop activity state can live in
        specialized Python locals instead of the ``_act``/``_pend`` dict
        protocol.

        Locals mode needs every loop id to commit from exactly one loop's
        latch and every multiplicity-spec tail to be consistent; a *clean*
        lid (its loop's only exiting edge is the committing latch) is
        additionally re-initialized at loop entry so reads collapse to
        the bare local.  Anything the scan cannot prove falls back to the
        dict protocol, which mirrors the reference engine move for move.
        """
        self.act_ok = False
        self.lid_act: Dict[str, str] = {}
        self.lid_pend: Dict[str, str] = {}
        self.lid_clean: Dict[str, bool] = {}
        self.lid_tail: Dict[str, tuple] = {}
        self.loop_lid_entries: Dict[BasicBlock, List[str]] = {}
        if not self.fn_batched:
            return
        ok = True
        lids_seen: Set[str] = set()
        tails: Dict[str, tuple] = {}
        for b in self.fn.blocks:
            for ins in b.instructions:
                bm = ins.attrs.get("batch_mult")
                if isinstance(bm, tuple):
                    for x in bm:
                        if isinstance(x, str):
                            lids_seen.add(x)
                    first = bm[0]
                    if isinstance(first, str):
                        prev = tails.get(first)
                        if prev is None:
                            tails[first] = bm[1:]
                        elif prev != bm[1:]:
                            ok = False
                ba = ins.attrs.get("batch_activity")
                if ba is not None:
                    lids_seen.add(ba[0])
                be = ins.attrs.get("batch_backedge")
                if be is not None:
                    lids_seen.add(be[0])
        committed: Set[str] = set()
        entries: Dict[BasicBlock, List[str]] = {}
        clean: Dict[str, bool] = {}
        for loop in self.loops_by_header.values():
            latches = loop.latches
            exiting = set(loop.exiting_blocks())
            for latch in latches:
                if not latch.instructions:
                    continue
                be = latch.instructions[-1].attrs.get("batch_backedge")
                if be is None:
                    continue
                lid = be[0]
                if lid in committed:
                    ok = False  # one lid committed by two loops
                committed.add(lid)
                entries.setdefault(loop.header, []).append(lid)
                clean[lid] = len(latches) == 1 and exiting == {latch}
        # Every lid a spec can *read* must have a commit site.
        for lid in lids_seen:
            if lid not in committed:
                ok = False
        if not ok:
            return
        self.act_ok = True
        self.lid_tail = tails
        self.lid_clean = clean
        self.loop_lid_entries = entries
        for n, lid in enumerate(sorted(lids_seen)):
            self.lid_act[lid] = f"_a{n}"
            self.lid_pend[lid] = f"_p{n}"

    def _mult_expr(self, spec: tuple) -> str:
        """Runtime multiplicity of a divergent spec (mirrors
        ``Interpreter._batch_mult``: first live lid wins, the trailing
        static B backstops)."""
        if self.act_ok:
            x = spec[0]
            if isinstance(x, int):
                return str(x)
            a = self.lid_act[x]
            if self.lid_clean.get(x):
                # Entry-init makes the local total: committed activity
                # while iterating, the chain fallback otherwise.
                return a
            return f"({a} if {a} is not None else {self._mult_expr(spec[1:])})"
        lids: List[str] = []
        tail = 0
        for x in spec:
            if isinstance(x, int):
                tail = x
                break
            lids.append(x)
        expr = repr(tail)
        for lid in reversed(lids):
            expr = f"_act.get({lid!r}, {expr})"
        return expr

    # -- small helpers -----------------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def hoist(self, obj, key=None) -> str:
        key = id(obj) if key is None else key
        name = self._memo.get(key)
        if name is None:
            name = f"_h{len(self._memo)}"
            self._memo[key] = name
            self.hoisted[name] = obj
        return name

    def _np(self, fn) -> str:
        return self.hoist(fn, key=("np", fn.__name__))

    def _dtype(self, elem) -> str:
        dt = elem_dtype(elem)
        return self.hoist(dt, key=("dt", dt.str))

    def name_of(self, instr: Value) -> str:
        name = self.names.get(instr)
        if name is None:
            name = self.names[instr] = f"v{len(self.names)}"
        return name

    def ref(self, v: Value) -> str:
        name = self.names.get(v)
        if name is not None:
            return name
        if isinstance(v, Constant):
            return self.hoist(_constant_payload(v), key=("c", id(v)))
        if isinstance(v, UndefValue):
            return self.hoist(_undef_payload(v.type), key=("u", id(v)))
        if getattr(v, "opcode", None) == "phi":
            # Phi locals are assigned on every incoming edge before any
            # read, so naming on demand is safe.
            return self.name_of(v)
        raise CodegenBailout("use-before-def")

    def kind(self, target: BasicBlock, stop: Optional[BasicBlock]) -> str:
        """Classify an edge target relative to the innermost open loop.

        Any target outside the loop is a ``break`` — the dispatch-
        variable exit merge re-classifies it one level up, so multi-exit
        and multi-level transfers unwind one Python loop at a time."""
        if self.open:
            frame = self.open[-1]
            if target is frame.loop.header:
                return "continue"
            if target not in frame.loop.blocks:
                return "break"
        if target is stop:
            return "stop"
        return "inline"

    def emit_break(self, target: BasicBlock) -> None:
        """Emit a ``break`` out of the innermost loop, recording the
        target so :meth:`emit_from` can patch a dispatch assignment in
        front when the loop turns out to have several exit targets."""
        frame = self.open[-1]
        idx = frame.register(target)
        frame.breaks.append((len(self.lines), idx))
        self.line("break")

    # -- accounting emission -----------------------------------------------------

    def _count_local(self, key: str) -> str:
        name = self.count_locals.get(key)
        if name is None:
            name = f"_k{len(self.count_locals)}"
            self.count_locals[key] = name
        return name

    def _ext_cost(self, callee: ExternalFunction, arg_types) -> float:
        cost = callee.cost
        if callable(cost):
            cost = cost(self.interp.machine, list(arg_types))
        return float(cost)

    def emit_charges(self, block: BasicBlock) -> None:
        """One merged charge prologue for everything the block executes.

        The reference engines' per-instruction charges (including the
        decoded engine's phi sweep and the batched engine's narrow
        prototypes × multiplicity) fold into at most one cycles add, one
        instruction add, one counter-local update per distinct key, one
        multiplicity resolve per divergent spec, and one budget check —
        all against the function-local accumulators.  Instructions
        without batch annotations charge plainly even inside a batched
        function, mirroring the reference engine's per-instruction gate
        (this is what the remainder loop and mixed blocks rely on).
        Completed-run totals are bit-identical (dyadic costs sum exactly
        under any association; counts commute); a trap's exact
        trap-point stats come from the replay.
        """
        cost = self.interp._cost
        cycles = 0.0
        instrs = 0
        counts: Dict[str, int] = {}
        # Divergent-multiplicity groups: spec -> [cycles/_m, instrs/_m, counts/_m]
        groups: Dict[tuple, list] = {}
        for ins in block.instructions:
            if self.fn_batched and "batch_mult" in ins.attrs:
                items, spec = self.interp._batch_info(ins)
                if isinstance(spec, int):
                    m = spec
                    if m:
                        for key, c in items:
                            cycles += c * m
                            instrs += m
                            counts[key] = counts.get(key, 0) + m
                else:
                    g = groups.setdefault(spec, [0.0, 0, {}])
                    for key, c in items:
                        g[0] += c
                        g[1] += 1
                        g[2][key] = g[2].get(key, 0) + 1
            else:
                op = ins.opcode
                # The engines hardcode phi charges at 0.0 cycles.
                cycles += 0.0 if op == "phi" else cost(ins)
                instrs += 1
                counts[op] = counts.get(op, 0) + 1
                if op == "call":
                    callee = ins.operands[0]
                    if isinstance(callee, ExternalFunction):
                        label = f"ext:{callee.name}"
                        cycles += self._ext_cost(
                            callee, (o.type for o in ins.operands[1:])
                        )
                        instrs += 1
                        counts[label] = counts.get(label, 0) + 1
        checked = False
        if cycles:
            self.line(f"_cy += {cycles!r}")
        if instrs:
            self.line(f"_ni += {instrs}")
            checked = True
        for key, n in counts.items():
            self.line(f"{self._count_local(key)} += {n}")
        for spec, (gcycles, ginstrs, gcounts) in groups.items():
            mref = self._mult_expr(spec)
            if not mref.isidentifier() and not mref.isdigit():
                self.line(f"_m = {mref}")
                mref = "_m"
            self.line(f"if {mref}:")
            self.indent += 1
            if gcycles:
                self.line(f"_cy += {gcycles!r} * {mref}")
            self.line(f"_ni += {ginstrs} * {mref}")
            for key, n in gcounts.items():
                mult = mref if n == 1 else f"{n} * {mref}"
                self.line(f"{self._count_local(key)} += {mult}")
            self.indent -= 1
            checked = True
        if checked:
            self.line("if _ni > _rem:")
            self.line("    _trap(_interp, _fname)")

    # -- value emission ----------------------------------------------------------

    def _vec_expr(self, ins, argrefs) -> Optional[str]:
        """Emit a vector op as a raw numpy expression, or ``None``.

        The superinstruction analogue of the scalar ``_inline_expr``:
        every template is the exact expression the ops.py impl evaluates
        (the per-call ``errstate`` guards are covered by the generated
        function's body-wide ``np.seterr(all="ignore")``); anything
        subtle — shifts, trapping division, saturating forms,
        float→int casts — falls back to the impl closure.
        """
        op = ins.opcode
        t = ins.type
        if op in ("icmp", "fcmp"):
            src_t = ins.operands[0].type
            if not isinstance(src_t, VectorType):
                return None
            pred = ins.attrs["pred"]
            a, b = argrefs
            if op == "icmp":
                sym = _VEC_CMP_U.get(pred)
                if sym is not None:
                    return f"({a} {sym} {b})"
                sym = _VEC_CMP_S.get(pred)
                sv = self._np(signed_view)
                return f"({sv}({a}) {sym} {sv}({b}))"
            sym = _VEC_FCMP.get(pred)
            if sym is None:
                return None
            isn = self._np(np.isnan)
            return f"(({a} {sym} {b}) & ~({isn}({a}) | {isn}({b})))"
        if op == "select":
            if isinstance(ins.operands[0].type, VectorType) or isinstance(
                t, VectorType
            ):
                c, a, b = argrefs
                return f"{self._np(np.where)}({c}, {a}, {b})"
            return None
        if not isinstance(t, VectorType):
            return None
        elem = t.elem
        if len(argrefs) == 2 and op in (
            "fadd", "fsub", "fmul", "fdiv", "frem", "fmin", "fmax",
            "add", "sub", "mul", "and", "or", "xor", "umin", "umax",
            "smin", "smax",
        ):
            a, b = argrefs
            if isinstance(elem, FloatType):
                sym = _VEC_FBIN.get(op)
                if sym is not None:
                    return f"({a} {sym} {b})"
                if op == "fmin":
                    return f"{self._np(np.minimum)}({a}, {b})"
                if op == "fmax":
                    return f"{self._np(np.maximum)}({a}, {b})"
                if op == "frem":
                    return f"{self._np(np.fmod)}({a}, {b})"
                return None
            if not isinstance(elem, IntType):
                return None
            if elem.bits == 1:
                sym = _VEC_BBIN.get(op)
                return None if sym is None else f"({a} {sym} {b})"
            sym = _VEC_IBIN.get(op)
            if sym is not None:
                return f"({a} {sym} {b})"
            if op == "umin":
                return f"{self._np(np.minimum)}({a}, {b})"
            if op == "umax":
                return f"{self._np(np.maximum)}({a}, {b})"
            if op in ("smin", "smax"):
                npf = self._np(np.minimum if op == "smin" else np.maximum)
                sv = self._np(signed_view)
                au = self._np(as_unsigned)
                return f"{au}({npf}({sv}({a}), {sv}({b})))"
            return None
        if op == "fneg":
            return f"(-{argrefs[0]})"
        if op == "fabs":
            return f"{self._np(np.abs)}({argrefs[0]})"
        if op == "fsqrt":
            return f"{self._np(np.sqrt)}({argrefs[0]})"
        if op == "not":
            return f"(~{argrefs[0]})"
        if op == "iabs":
            sv = self._np(signed_view)
            au = self._np(as_unsigned)
            return f"{au}({self._np(np.abs)}({sv}({argrefs[0]})))"
        if op == "fma":
            a, b, c = argrefs
            return f"({a} * {b} + {c})"
        if op == "broadcast":
            return (
                f"{self._np(np.full)}({t.count}, {argrefs[0]},"
                f" {self._dtype(elem)})"
            )
        if op == "shuffle":
            n = ins.operands[0].type.count
            i64 = self.hoist(np.int64, key=("np", "int64"))
            return f"{argrefs[0]}[{argrefs[1]}.astype({i64}) % {n}]"
        if op in _VEC_CAST_ASTYPE or op in ("bitcast", "sext", "sitofp"):
            src_t = ins.operands[0].type
            if not isinstance(src_t, VectorType):
                return None
            from_e = src_t.elem
            v = argrefs[0]
            dt = self._dtype(elem)
            if op == "bitcast":
                if elem_dtype(from_e).itemsize == elem_dtype(elem).itemsize:
                    return f"{v}.view({dt})"
                return f"{v}.astype({dt})"
            if op == "sitofp":
                return f"{self._np(signed_view)}({v}).astype({dt})"
            if op == "sext":
                if getattr(from_e, "bits", 0) == 1:
                    return None
                sdt = signed_dtype(elem)
                sd = self.hoist(sdt, key=("sdt", np.dtype(sdt).str))
                sv = self._np(signed_view)
                au = self._np(as_unsigned)
                return f"{au}({sv}({v}).astype({sd}))"
            return f"{v}.astype({dt})"
        return None

    def emit_compute(self, ins) -> None:
        argrefs = [self.ref(o) for o in ins.operands]
        expr = self.interp._inline_expr(ins, argrefs, self.hoist)
        if expr is None:
            expr = self._vec_expr(ins, argrefs)
        if expr is None:
            impl = self.hoist(
                self.interp._value_impl(ins), key=("impl", id(ins))
            )
            if ins.opcode in _REBIND_OPS:
                self.impl_instrs[impl] = ins
            expr = f"{impl}({', '.join(argrefs)})"
        self.line(f"{self.name_of(ins)} = {expr}")

    def emit_call(self, ins) -> None:
        callee = ins.operands[0]
        args = ", ".join(self.ref(o) for o in ins.operands[1:])
        if isinstance(callee, ExternalFunction):
            # Charges (the 'call' dispatch + ``ext:<name>`` leg, or the
            # batched narrow prototypes) live in the block prologue; only
            # the impl invocation remains here.
            impl = self.hoist(callee.impl, key=("ext", callee.name))
            self.line(f"{self.name_of(ins)} = {impl}({args})")
        elif self.fn_batched and "batch_mult" in ins.attrs:
            raise CodegenBailout("batched-internal-call")
        else:
            # The callee charges ExecStats directly: flush the local
            # accumulators around the call and re-derive the headroom.
            fref = self.hoist(callee, key=("fn", callee.name))
            self.line(_FLUSH)
            self.line(
                f"{self.name_of(ins)} = _exec({fref}, [{args}], depth + 1)"
            )
            self.line("_rem = _L - _s.instructions")

    def emit_pend(self, ins, ba) -> None:
        """Divergent-loop pending activity: the lane mask's per-gang
        any-reduction, with the batch factor inlined as a literal
        (specializing :func:`gang_activity_count`)."""
        mask = self.ref(ins.operands[0])
        lid, batch = ba[0], ba[1]
        i_ = self.hoist(int, key=("b", "int"))
        expr = f"{i_}({mask}.reshape({batch}, -1).any(axis=1).sum())"
        p = self.lid_pend.get(lid)
        if p is not None:
            self.line(f"{p} = {expr}")
        else:
            self.line(f"_pend[{lid!r}] = {expr}")

    # -- edges -------------------------------------------------------------------

    def emit_phi_moves(self, src: BasicBlock, dst: BasicBlock) -> None:
        """Parallel phi assignment for the ``src``→``dst`` edge.  Phi
        charges are edge-independent and live in ``dst``'s prologue."""
        phis = []
        for ins in dst.instructions:
            if ins.opcode != "phi":
                break
            phis.append(ins)
        if not phis:
            return
        targets = [self.name_of(p) for p in phis]
        exprs = [self.ref(p.phi_value_for(src)) for p in phis]
        self.line(f"{', '.join(targets)} = {', '.join(exprs)}")

    def emit_edge(
        self,
        src: BasicBlock,
        target: BasicBlock,
        stop: Optional[BasicBlock],
        commit: Optional[List[str]] = None,
    ) -> None:
        """Tail-position edge inside a suite: commit + moves + jump/region."""
        for text in commit or ():
            self.line(text)
        self.emit_phi_moves(src, target)
        k = self.kind(target, stop)
        if k == "continue":
            self.line("continue")
        elif k == "break":
            self.emit_break(target)
        elif k == "inline":
            self.emit_from(target, stop)
        # "stop": fall out of the suite.

    def _suite(self, emit_fn) -> None:
        self.indent += 1
        if self.indent > MAX_NESTING:
            raise CodegenBailout("deep-nesting")
        mark = len(self.lines)
        emit_fn()
        if len(self.lines) == mark:
            self.line("pass")
        self.indent -= 1

    # -- structure ---------------------------------------------------------------

    def emit_from(self, block: Optional[BasicBlock],
                  stop: Optional[BasicBlock]) -> None:
        """Emit the region starting at ``block`` until control reaches
        ``stop`` (not emitted), a jump, or a return."""
        while block is not None:
            if block is stop:
                return
            loop = self.loops_by_header.get(block)
            if loop is not None and block not in self.open_headers:
                block = self._emit_loop(loop, block, stop)
                continue
            block = self.emit_block(block, stop)

    def _emit_loop(self, loop: Loop, header: BasicBlock,
                   stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        """Emit one natural loop; returns the inline continuation block
        (for the caller's region walk) or ``None`` when the suite ends.

        Exit edges register on the loop's frame as they are emitted.  One
        distinct target lowers to plain ``break`` + inline continuation;
        several get a dispatch variable assigned at each break site and
        an ``if``/``elif`` exit merge after the loop, whose arms
        re-classify their target one loop level up (this is what retires
        the ``multi-exit-loop`` / ``multi-level-break`` /
        ``multi-level-continue`` bailouts)."""
        for lid in self.loop_lid_entries.get(header, ()):
            # Divergent-activity entry init: makes the committed local
            # total over the loop body (see _scan_batch_shapes).
            if self.lid_clean.get(lid):
                tail = self.lid_tail.get(lid)
                if tail is not None:
                    self.line(f"{self.lid_act[lid]} = {self._mult_expr(tail)}")
        frame = _LoopFrame(loop)
        self.line("while True:")
        self.open.append(frame)
        self.open_headers.add(header)
        self._suite(lambda: self.emit_from(header, None))
        self.open.pop()
        self.open_headers.discard(header)
        targets = frame.targets
        if not targets:
            return None  # infinite loop: nothing after is reachable
        if len(targets) == 1:
            exit_b = targets[0]
            k = self.kind(exit_b, stop)
            if k == "inline":
                return exit_b
            if k == "continue":
                self.line("continue")
            elif k == "break":
                self.emit_break(exit_b)
            return None
        # Dispatch-variable exit merge.
        var = f"_ex{self.exit_counter}"
        self.exit_counter += 1
        for li, ti in reversed(frame.breaks):
            text = self.lines[li]
            ind = text[: len(text) - len(text.lstrip())]
            self.lines.insert(li, f"{ind}{var} = {ti}")
        join = self.pdom.get(header)
        if (
            not isinstance(join, BasicBlock)
            or join in self.emitted
            or self.kind(join, stop) != "inline"
        ):
            join = None
        arm_stop = join if join is not None else stop
        last = len(targets) - 1
        for i, target in enumerate(targets):
            if i == 0:
                self.line(f"if {var} == 0:")
            elif i == last:
                self.line("else:")
            else:
                self.line(f"elif {var} == {i}:")
            self._suite(
                lambda t=target: self._emit_dispatch_arm(t, arm_stop)
            )
        return join

    def _emit_dispatch_arm(self, target: BasicBlock,
                           stop: Optional[BasicBlock]) -> None:
        """One exit-merge arm: the break site already ran the edge's
        commits and phi moves, so only the control transfer remains."""
        k = self.kind(target, stop)
        if k == "inline":
            self.emit_from(target, stop)
        elif k == "continue":
            self.line("continue")
        elif k == "break":
            self.emit_break(target)
        # "stop": fall out of the arm into the join continuation.

    def _fold_cond(self, body, term):
        """The trailing body instruction, when it is a single-use scalar
        compare / mask reduction consumed only by this ``condbr`` and
        expressible as a raw truthy Python expression (the fused
        engine's ``cmp_condbr`` pattern, extended to mask reductions);
        ``None`` otherwise."""
        if term.opcode != "condbr" or not body:
            return None
        cond = body[-1]
        if term.operands[0] is not cond or not _uses_exactly(cond, term, 0):
            return None
        op = cond.opcode
        if op in ("mask_any", "mask_all"):
            return cond
        if op not in ("icmp", "fcmp"):
            return None
        if isinstance(cond.operands[0].type, VectorType):
            return None
        pred = cond.attrs["pred"]
        if op == "fcmp":
            return cond if pred in _COND_FCMP else None
        return cond

    def _fold_cond_expr(self, cond) -> str:
        """Raw truthy condition for a folded compare (charges stay in the
        block prologue; the 0/1 local is never materialized)."""
        op = cond.opcode
        if op == "mask_any":
            ba = cond.attrs.get("batch_activity") if self.fn_batched else None
            if ba is not None:
                # The pending gang-activity count is computed anyway and
                # is positive iff any lane is active: branch on it and
                # skip the extra .any() reduction entirely.
                self.emit_pend(cond, ba)
                p = self.lid_pend.get(ba[0])
                return p if p is not None else f"_pend[{ba[0]!r}]"
            return f"{self.ref(cond.operands[0])}.any()"
        if op == "mask_all":
            ba = cond.attrs.get("batch_activity") if self.fn_batched else None
            if ba is not None:  # pragma: no cover - activity sits on mask_any
                self.emit_pend(cond, ba)
            return f"{self.ref(cond.operands[0])}.all()"
        pred = cond.attrs["pred"]
        a = self.ref(cond.operands[0])
        b = self.ref(cond.operands[1])
        if op == "fcmp":
            return f"{a} {_COND_FCMP[pred]} {b}"
        sym = _COND_CMP_U.get(pred)
        if sym is not None:
            return f"{a} {sym} {b}"
        # XOR with the sign bit maps two's-complement order onto
        # unsigned order (same trick as the scalar inliner).
        sb = 1 << (getattr(cond.operands[0].type, "bits", 64) - 1)
        return f"({a} ^ {sb:#x}) {_COND_CMP_S[pred]} ({b} ^ {sb:#x})"

    def emit_block(self, block: BasicBlock,
                   stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        """Emit one block's charges + body + terminator; returns the
        inline continuation block, or ``None`` when the suite ends here."""
        if block in self.emitted:
            raise CodegenBailout("block-re-emitted")
        self.emitted.add(block)
        instrs = block.instructions
        if not instrs or not instrs[-1].is_terminator:
            raise CodegenBailout("no-terminator")
        self.emit_charges(block)
        nphi = 0
        while nphi < len(instrs) and instrs[nphi].opcode == "phi":
            nphi += 1
        body, term = instrs[nphi:-1], instrs[-1]
        fold = self._fold_cond(body, term)
        emit_n = len(body) - 1 if fold is not None else len(body)
        for ins in body[:emit_n]:
            op = ins.opcode
            if op == "call":
                self.emit_call(ins)
            elif op in _GROUP_OPS:
                self.emit_compute(ins)
            else:
                raise CodegenBailout(f"opcode:{op}")
            if self.fn_batched:
                ba = ins.attrs.get("batch_activity")
                if ba is not None:
                    self.emit_pend(ins, ba)
        cond_expr = self._fold_cond_expr(fold) if fold is not None else None
        return self.emit_terminator(block, term, stop, cond_expr)

    def _unreachable_msg(self) -> str:
        return f"reached 'unreachable' in @{self.fn.name}"

    def emit_terminator(self, block: BasicBlock, term,
                        stop: Optional[BasicBlock],
                        cond_expr: Optional[str]) -> Optional[BasicBlock]:
        op = term.opcode
        if op == "ret":
            # A ret inside a batched body charges through the prologue
            # like any other annotated instruction.
            if term.operands:
                v = term.operands[0]
                r = self.ref(v)
                if isinstance(v, (Constant, UndefValue)) and isinstance(
                    v.type, VectorType
                ):
                    # Shared constant payloads must not leak to callers
                    # who may mutate the returned array.
                    r = f"{r}.copy()"
                self.line(f"return {r}")
            else:
                self.line("return None")
            return None
        if op == "unreachable":
            self.line(f"raise _VMTrap({self._unreachable_msg()!r})")
            return None
        if op == "br":
            self.emit_phi_moves(block, term.operands[0])
            return self._goto(term.operands[0], stop)
        if op == "condbr":
            cond = (
                cond_expr if cond_expr is not None
                else self.ref(term.operands[0])
            )
            commits: Optional[Tuple[List[str], List[str]]] = None
            backedge = (
                term.attrs.get("batch_backedge") if self.fn_batched else None
            )
            if backedge is not None:
                # Divergent-loop backedge: this block's prologue charged
                # with the *previous* iteration's activity; commit the
                # count the mask reduction just produced before the next
                # iteration (or reset the loop's state on exit).
                lid, taken_idx = backedge
                a = self.lid_act.get(lid)
                if a is not None:
                    commit = [f"{a} = {self.lid_pend[lid]}"]
                    drop = [] if self.lid_clean.get(lid) else [f"{a} = None"]
                else:
                    commit = [f"_act[{lid!r}] = _pend[{lid!r}]"]
                    drop = [
                        f"_act.pop({lid!r}, None)",
                        f"_pend.pop({lid!r}, None)",
                    ]
                commits = (commit, drop) if taken_idx == 1 else (drop, commit)
            return self.emit_condbr(
                block, cond, term.operands[1], term.operands[2], stop, commits
            )
        raise CodegenBailout(f"terminator:{op}")

    def _goto(self, target: BasicBlock,
              stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        """Unconditional transfer whose phi moves are already emitted."""
        k = self.kind(target, stop)
        if k == "inline":
            return target
        if k == "continue":
            self.line("continue")
        elif k == "break":
            self.emit_break(target)
        return None

    def emit_condbr(
        self,
        src: BasicBlock,
        cond: str,
        iftrue: BasicBlock,
        iffalse: BasicBlock,
        stop: Optional[BasicBlock],
        commits: Optional[Tuple[List[str], List[str]]],
    ) -> Optional[BasicBlock]:
        """Structured lowering of a conditional branch; returns the inline
        continuation (the join) or ``None`` when the suite ends here."""
        ctrue = commits[0] if commits else None
        cfalse = commits[1] if commits else None
        ka = self.kind(iftrue, stop)
        kb = self.kind(iffalse, stop)

        if ka == "inline" and kb == "inline":
            # Forward diamond: the join is the immediate postdominator.
            join = self.pdom.get(src)
            if (
                isinstance(join, BasicBlock)
                and self.kind(join, stop) == "inline"
            ):
                self.line(f"if {cond}:")
                self._suite(lambda: self.emit_edge(src, iftrue, join, ctrue))
                self.line("else:")
                self._suite(lambda: self.emit_edge(src, iffalse, join, cfalse))
                return join
            # No structural join (both arms return, or converge only at a
            # jump target): every path leaves its suite on its own.
            self.line(f"if {cond}:")
            self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
            self.line("else:")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            return None
        if ka != "inline" and kb != "inline":
            self.line(f"if {cond}:")
            self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
            self.line("else:")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            return None
        # Exactly one arm is inline.
        if ka == "inline":
            if kb == "stop":
                self.line(f"if {cond}:")
                self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
                self.line("else:")
                self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
                return None
            # False arm jumps; flatten: guard the jump, fall through inline.
            self.line(f"if not ({cond}):")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            for text in ctrue or ():
                self.line(text)
            self.emit_phi_moves(src, iftrue)
            return iftrue
        if ka == "stop":
            self.line(f"if {cond}:")
            self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
            self.line("else:")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            return None
        # True arm jumps; flatten.
        self.line(f"if {cond}:")
        self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
        for text in cfalse or ():
            self.line(text)
        self.emit_phi_moves(src, iffalse)
        return iffalse

    # -- entry -------------------------------------------------------------------

    def emit(self) -> Tuple[str, Dict[str, object]]:
        fn = self.fn
        size = sum(len(b.instructions) for b in fn.blocks)
        if size > MAX_CODEGEN_INSTRS:
            raise CodegenBailout("function-too-large")
        seterr = self.hoist(np.seterr, key=("np", "seterr"))
        self.emit_from(fn.entry, None)
        body: List[str] = []
        for text in self.lines:
            if text.lstrip() != _FLUSH:
                body.append(text)
                continue
            # Internal-call flush: push the local accumulators into
            # ExecStats and reset them (the key set is only complete now).
            ind = text[: len(text) - len(text.lstrip())]
            body.append(f"{ind}_s.cycles += _cy")
            body.append(f"{ind}_s.instructions += _ni")
            body.append(f"{ind}_cy = 0.0")
            body.append(f"{ind}_ni = 0")
            for key, name in self.count_locals.items():
                body.append(f"{ind}if {name}:")
                body.append(f"{ind}    _c[{key!r}] = _c.get({key!r}, 0) + {name}")
                body.append(f"{ind}    {name} = 0")
        head: List[str] = []
        if fn.args:
            names = ", ".join(self.names[a] for a in fn.args)
            head.append(f"    {names}{',' if len(fn.args) == 1 else ''} = _args")
        head.append("    _L = _interp.max_instructions")
        head.append("    _rem = _L - _s.instructions")
        head.append("    _mk = _mem._brk")
        head.append("    _cy = 0.0")
        head.append("    _ni = 0")
        if self.count_locals:
            head.append(
                "    " + " = ".join(self.count_locals.values()) + " = 0"
            )
        if self.fn_batched:
            if self.act_ok:
                unclean = [
                    self.lid_act[lid]
                    for lid in sorted(self.lid_act)
                    if not self.lid_clean.get(lid)
                ]
                if unclean:
                    head.append("    " + " = ".join(unclean) + " = None")
            else:
                head.append("    _act = {}")
                head.append("    _pend = {}")
        head.append(f"    _es = {seterr}(all='ignore')")
        head.append("    try:")
        tail = [
            "    finally:",
            "        _mem._brk = _mk",
            f"        {seterr}(**_es)",
            "        _s.cycles += _cy",
            "        _s.instructions += _ni",
        ]
        for key, name in self.count_locals.items():
            tail.append(f"        if {name}:")
            tail.append(f"            _c[{key!r}] = _c.get({key!r}, 0) + {name}")
        params = ", ".join(f"{k}={k}" for k in self.hoisted)
        source = (
            f"def _kfn(_args, depth, {params}):\n"
            + "\n".join(head + body + tail)
        )
        return source, self.hoisted


def _fixed_bindings(interp, function: Function) -> Dict[str, object]:
    return {
        "_s": interp.stats,
        "_c": interp.stats.counts,
        "_interp": interp,
        "_mem": interp.memory,
        "_fname": function.name,
        "_trap": _budget_trap,
        "_exec": interp._exec_function,
        "_gac": gang_activity_count,
        "_VMTrap": VMTrap,
    }


def _batch_fingerprint(function: Function) -> tuple:
    """Batching configuration visible to emission: the ``batched`` attr
    (the batch factor, or ``None``) and the number of annotated
    instructions.  Attrs-only mutations — stripping or re-running the
    batch pass on the same clone — leave block/instruction counts
    untouched, so the structural key alone would replay a stale emission
    (or worse, a stale *bailout*) for a configuration it never saw."""
    n = 0
    for b in function.blocks:
        for ins in b.instructions:
            if "batch_mult" in ins.attrs:
                n += 1
    return (function.attrs.get("batched"), n)


def _emit_cache_key(function: Function):
    """Cache key stable across ``clone_module`` copies of one function.

    The driver's compile cache hands out a fresh clone per compile call,
    so object identity never repeats across runs; canonical modules are
    stamped with a process-unique ``emit_key`` attr that clones inherit.
    Block/instruction counts ride along as a structural guard: a pass
    mutating a clone *after* compilation (extra DCE, a test rewriting
    IR) changes the counts and misses rather than replaying stale code.
    Unstamped functions (hand-built IR, fault-injected compiles) fall
    back to object identity.
    """
    stamp = function.attrs.get("emit_key")
    if stamp is None:
        return function
    nblocks = len(function.blocks)
    ninstrs = sum(len(b.instructions) for b in function.blocks)
    return (stamp, nblocks, ninstrs)


def emit_function(interp, function: Function) -> Tuple[str, Dict[str, object]]:
    """Linearize ``function`` against ``interp``'s machine/cost bindings.

    Returns ``(source, bindings)``; raises :class:`CodegenBailout` when
    the function cannot be linearized.  Emissions (and bailouts) are
    cached per function/machine/cost-model/batch-fingerprint — keyed
    structurally (see :func:`_emit_cache_key`), so a fresh interpreter
    over a fresh compile-cache clone of the same kernel reuses the
    cached source and only rebinds the prologue names plus the impl
    closures that capture interpreter memory.  The fingerprint match
    keeps a bailout memoized against one batching configuration from
    suppressing emission for another (attrs-only mutations leave the
    structural key unchanged).
    """
    key = _emit_cache_key(function)
    cache = _EMIT_CACHE if isinstance(key, tuple) else _EMIT_CACHE_BY_FN
    if cache is _EMIT_CACHE and len(cache) >= _EMIT_CACHE_CAPACITY:
        # Stamps of compile-cache-evicted modules accumulate; a blunt
        # reset only costs re-emission, never correctness.
        cache.clear()
    fingerprint = _batch_fingerprint(function)
    entries = cache.get(key)
    if entries is not None:
        for machine, cost_model, fp, source, recipe, reason in entries:
            if (
                machine is interp.machine
                and cost_model is interp.cost_model
                and fp == fingerprint
            ):
                if reason is not None:
                    raise CodegenBailout(reason)
                bindings = _fixed_bindings(interp, function)
                for name, ins, obj in recipe:
                    bindings[name] = (
                        obj if ins is None else interp._value_impl(ins)
                    )
                return source, bindings
    emitter = _Emitter(interp, function)
    try:
        source, bindings = emitter.emit()
    except CodegenBailout as exc:
        cache.setdefault(key, []).append(
            (interp.machine, interp.cost_model, fingerprint, None, None,
             exc.reason)
        )
        raise
    # Impl-closure entries store only the Instruction (the closure itself
    # captures the emitting interpreter's memory and must not be pinned).
    recipe = tuple(
        (name, ins, None if ins is not None else obj)
        for name, obj in bindings.items()
        if name not in _FIXED_BINDINGS
        for ins in (emitter.impl_instrs.get(name),)
    )
    cache.setdefault(key, []).append(
        (interp.machine, interp.cost_model, fingerprint, source, recipe, None)
    )
    return source, bindings


def compiled_code(source: str) -> Tuple[object, str]:
    """Code object for a generated source: process cache → disk → compile.

    Returns ``(code, origin)`` with origin in ``{"cache", "disk",
    "compiled"}`` for the ``vm.codegen.*`` counters.
    """
    code = _CODE_CACHE.get(source)
    if code is not None:
        return code, "cache"
    code = diskcache.load_code(source)
    if code is not None:
        _CODE_CACHE[source] = code
        return code, "disk"
    code = compile(source, "<repro-vm-codegen>", "exec")
    _CODE_CACHE[source] = code
    diskcache.store_code(source, code)
    return code, "compiled"


def bind_code(code, bindings: Dict[str, object]):
    """Bind a compiled code object to one interpreter's live payloads."""
    g = dict(bindings)
    # Empty-ish builtins keep emitted code honest (every name must be a
    # hoisted binding), but numpy's lazy C-level imports resolve
    # __import__ through the *calling* frame's builtins — leave it in or
    # the first .sum()/.any() ever run inside generated code dies with
    # KeyError('__import__').
    g["__builtins__"] = {"__import__": __import__}
    exec(code, g)
    return g["_kfn"]
