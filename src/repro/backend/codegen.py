"""Whole-kernel codegen: one generated Python function per IR function.

The engine ladder so far (reference → predecoded thunks →
superinstruction windows → gang batching) still pays a Python-level
fetch/decode step at every basic-block boundary: a dict lookup for the
decoded block, per-phi resolver calls, tuple unpacks per body entry, and
a terminator dispatch.  This module retires that loop entirely — at
decode time it *linearizes* a function's structurized CFG into a single
generated Python function over the live payloads:

* every SSA value becomes a Python local (``v7``), so the per-value
  ``env`` dict disappears along with its reads and writes;
* natural loops become native ``while True:`` loops whose exit edges
  lower to ``break`` — for vectorized divergent loops the loop condition
  is the ``mask_any`` lane-mask reduction, i.e. the classic
  ``while mask.any():`` shape — and backedges lower to a parallel phi
  assignment plus ``continue``;
* forward branches lower to ``if``/``else`` on the (already
  mask-converted) scalar condition, with the structural join computed
  from the immediate postdominator;
* the superinstruction window emitter's expression inliner
  (:meth:`Interpreter._inline_expr` / :meth:`Interpreter._value_impl`)
  becomes the per-run expression generator inside the one function;
* gang-batched blocks inline their narrow-prototype charging
  (multiplicity × per-item cost, divergent-loop activity dicts) exactly
  as :meth:`Interpreter._exec_batch_block` interprets it.

Accounting contract
-------------------

``ExecStats`` stays bit-identical to the reference engine for every run
that completes, and the trap-replay protocol covers the rest:

* all charges of one basic block merge into a single prologue — one
  cycles add, one instruction add, one counter update per distinct
  opcode, one budget check.  Cycle costs are dyadic rationals well
  inside float53 (the window emitter's bulk-charge argument), so the
  merged sums are bit-identical to the reference engine's sequential
  accumulation; instruction and opcode counts are integers and commute;
* batched blocks fold their narrow-prototype charges the same way,
  grouped by multiplicity spec: static multiplicities fold at emit time,
  divergent ones resolve one ``_m`` per spec per execution (activity is
  constant within a block — it only changes at backedge commits);
* the per-block budget check traps **iff** the reference engine traps:
  the instruction counter is monotone and every charging block checks,
  so any reference-engine budget crossing fires a (possibly later) check
  here, and a check here never fires unless the reference engine crossed
  first;
* a trap's exact trap-point stats, message, and memory effects come from
  the **replay**: the codegen engine only ever runs under
  :meth:`Interpreter._run_replayable`, which snapshots memory + stats,
  rolls back on any ``VMTrap``/``MemoryError_``, and re-runs on the
  predecoded twin (``codegen=False``), whose outcome is authoritative —
  the same contract gang batching established.  The interpreter arms the
  codegen engine *only* inside that wrapper, so fault-injected and
  sharded runs (which skip the wrapper) transparently use the decoded
  engine.

Bailout taxonomy
----------------

Linearization is best-effort: any shape the structurer cannot express as
native Python control flow raises :class:`CodegenBailout` with a reason
(``multi-exit-loop``, ``multi-level-break``, ``block-re-emitted``,
``opcode:<op>``, ``function-too-large``, ``injected-fault``, ...) and
the function falls back to the decoded engine.  Reasons are tallied per
interpreter and surface as ``vm.codegen.bailouts`` telemetry.

Caching
-------

Generated source embeds only structure (costs as literals, opcode
strings, hoisted-name wiring); payloads and impls bind at ``exec`` time
through default arguments, so the *code object* is shareable.  Sources
are cached process-wide and the compiled code objects persist across
processes via :mod:`repro.diskcache` (``store_code``/``load_code``).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Set, Tuple

from .. import diskcache
from ..ir.cfg import Loop, find_loops, reverse_postorder
from ..ir.instructions import REDUCE_OPS
from ..ir.module import BasicBlock, ExternalFunction, Function
from ..ir.types import VectorType
from ..ir.values import Constant, UndefValue, Value
from ..vm.interp import (
    _GROUP_OPS,
    _budget_trap,
    _constant_payload,
    _undef_payload,
)
from ..vm.ops import VMTrap, gang_activity_count

__all__ = ["CodegenBailout", "emit_function", "compiled_code", "bind_code"]

#: Emission refuses functions above this static instruction count — the
#: generated source would dwarf the decode win and slow ``compile()``.
MAX_CODEGEN_INSTRS = 8000

#: Emission refuses nesting deeper than this (the CPython tokenizer caps
#: indentation at 100 levels; structured kernels sit far below this).
MAX_NESTING = 40

#: Virtual exit node for the postdominator computation.
_EXIT = object()

#: Generated source → compiled code object, shared across every
#: interpreter in the process (the source embeds no payloads).
_CODE_CACHE: Dict[str, object] = {}

#: Hoisted prologue names rebuilt per interpreter (everything else in the
#: bindings is interpreter-independent or re-derivable from a recipe).
_FIXED_BINDINGS = frozenset(
    ("_s", "_c", "_interp", "_mem", "_fname", "_trap", "_exec", "_gac", "_VMTrap")
)

#: Ops whose ``_value_impl`` closure captures interpreter state (memory,
#: or the interpreter itself for cross-lane reduces) and must be rebuilt
#: when a cached emission rebinds to another interpreter; every other
#: impl closure depends only on the instruction and is shared.
_REBIND_OPS = REDUCE_OPS | frozenset(
    ("load", "store", "vload", "vstore", "gather", "scatter",
     "alloca", "atomicrmw")
)

#: Key → [(machine, cost_model, source, recipe, bailout_reason)]:
#: emission (linearization + postdominators) amortizes across fresh
#: interpreters — and, via the driver's ``emit_key`` stamps, across
#: fresh compile-cache clones — of the same kernel; only the prologue
#: names and the memory-capturing impl closures rebind per interpreter.
#: Stamped structural keys (tuples) live in a capped plain dict;
#: unstamped functions key the weak side so hand-built IR can't leak.
_EMIT_CACHE: Dict[tuple, list] = {}
_EMIT_CACHE_CAPACITY = 512
_EMIT_CACHE_BY_FN: "weakref.WeakKeyDictionary[Function, list]" = (
    weakref.WeakKeyDictionary()
)


class CodegenBailout(Exception):
    """This function's CFG or opcode mix cannot be linearized; the caller
    falls back to the decoded engine and records ``reason``."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _postdominators(function: Function) -> Dict[BasicBlock, object]:
    """Immediate postdominators of the reachable CFG (Cooper–Harvey–
    Kennedy on the reverse graph, with a virtual exit joining every
    ``ret``/``unreachable`` block).  Blocks that cannot reach an exit
    (infinite loops) are absent from the result.
    """
    reachable = reverse_postorder(function)
    reachable_set = set(reachable)
    exits = [
        b for b in reachable
        if b.instructions and b.instructions[-1].opcode in ("ret", "unreachable")
    ]
    # Reverse-graph successors: CFG predecessors (restricted to reachable).
    rsucc: Dict[object, List[object]] = {
        b: [p for p in b.predecessors if p in reachable_set] for b in reachable
    }
    rsucc[_EXIT] = list(exits)

    # Postorder of the reverse graph from the virtual exit (iterative).
    visited: Set[object] = {_EXIT}
    postorder: List[object] = []
    stack: List[Tuple[object, object]] = [(_EXIT, iter(rsucc[_EXIT]))]
    while stack:
        _node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(rsucc[nxt])))
                advanced = True
                break
        if not advanced:
            postorder.append(stack.pop()[0])
    rpo = postorder[::-1]
    index = {b: i for i, b in enumerate(rpo)}
    ipdom: Dict[object, object] = {_EXIT: _EXIT}

    def intersect(b1: object, b2: object) -> object:
        while b1 is not b2:
            while index[b1] > index[b2]:
                b1 = ipdom[b1]
            while index[b2] > index[b1]:
                b2 = ipdom[b2]
        return b1

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block is _EXIT:
                continue
            # Reverse-graph predecessors: CFG successors (+ the virtual
            # exit edge for exit blocks).
            preds: List[object] = [
                s for s in block.successors
                if s in reachable_set and ipdom.get(s) is not None
            ]
            if block.instructions and block.instructions[-1].opcode in (
                "ret", "unreachable"
            ):
                preds.append(_EXIT)
            if not preds:
                continue
            new = preds[0]
            for p in preds[1:]:
                new = intersect(p, new)
            if ipdom.get(block) is not new:
                ipdom[block] = new
                changed = True
    ipdom.pop(_EXIT, None)
    return ipdom


class _Emitter:
    """Linearizes one function into generated Python source + bindings."""

    def __init__(self, interp, function: Function):
        self.interp = interp
        self.fn = function
        self.lines: List[str] = []
        self.indent = 2
        self.names: Dict[Value, str] = {}
        for i, arg in enumerate(function.args):
            self.names[arg] = f"a{i}"
        self.hoisted: Dict[str, object] = {
            "_s": interp.stats,
            "_c": interp.stats.counts,
            "_interp": interp,
            "_mem": interp.memory,
            "_fname": function.name,
            "_trap": _budget_trap,
            "_exec": interp._exec_function,
            "_gac": gang_activity_count,
            "_VMTrap": VMTrap,
        }
        self._memo: Dict[object, str] = {}
        #: Hoisted name → Instruction for ``_value_impl`` closures, which
        #: may capture this interpreter's memory and must be rebuilt when
        #: the cached emission rebinds to another interpreter.
        self.impl_instrs: Dict[str, object] = {}
        #: Stack of (loop, exit_block) for the Python loops currently open.
        self.open: List[Tuple[Loop, Optional[BasicBlock]]] = []
        self.open_headers: Set[BasicBlock] = set()
        self.emitted: Set[BasicBlock] = set()
        self.loops_by_header: Dict[BasicBlock, Loop] = {
            loop.header: loop for loop in find_loops(function)
        }
        self.pdom = _postdominators(function)
        self._batched_blocks: Dict[BasicBlock, bool] = {}

    # -- small helpers -----------------------------------------------------------

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def hoist(self, obj, key=None) -> str:
        key = id(obj) if key is None else key
        name = self._memo.get(key)
        if name is None:
            name = f"_h{len(self._memo)}"
            self._memo[key] = name
            self.hoisted[name] = obj
        return name

    def name_of(self, instr: Value) -> str:
        name = self.names.get(instr)
        if name is None:
            name = self.names[instr] = f"v{len(self.names)}"
        return name

    def ref(self, v: Value) -> str:
        name = self.names.get(v)
        if name is not None:
            return name
        if isinstance(v, Constant):
            return self.hoist(_constant_payload(v), key=("c", id(v)))
        if isinstance(v, UndefValue):
            return self.hoist(_undef_payload(v.type), key=("u", id(v)))
        if getattr(v, "opcode", None) == "phi":
            # Phi locals are assigned on every incoming edge before any
            # read, so naming on demand is safe.
            return self.name_of(v)
        raise CodegenBailout("use-before-def")

    def _is_batched(self, block: BasicBlock) -> bool:
        flag = self._batched_blocks.get(block)
        if flag is None:
            flag = self._batched_blocks[block] = any(
                "batch_mult" in i.attrs for i in block.instructions
            )
        return flag

    def kind(self, target: BasicBlock, stop: Optional[BasicBlock]) -> str:
        """Classify an edge target relative to the open Python loops."""
        top = len(self.open) - 1
        for i in range(top, -1, -1):
            loop, exit_b = self.open[i]
            if target is loop.header:
                if i == top:
                    return "continue"
                raise CodegenBailout("multi-level-continue")
            if target is exit_b:
                if i == top:
                    return "break"
                raise CodegenBailout("multi-level-break")
        if target is stop:
            return "stop"
        return "inline"

    # -- accounting emission -----------------------------------------------------

    def _ext_cost(self, callee: ExternalFunction, arg_types) -> float:
        cost = callee.cost
        if callable(cost):
            cost = cost(self.interp.machine, list(arg_types))
        return float(cost)

    def emit_charges(self, block: BasicBlock, batched: bool) -> None:
        """One merged charge prologue for everything the block executes.

        The reference engines' per-instruction charges (including the
        decoded engine's phi sweep and the batched engine's narrow
        prototypes × multiplicity) fold into at most one cycles add, one
        instruction add, one counter update per distinct key, one ``_m``
        resolve per divergent spec, and one budget check.  Completed-run
        totals are bit-identical (dyadic costs sum exactly under any
        association; counts commute); a trap's exact trap-point stats
        come from the replay.
        """
        cost = self.interp._cost
        cycles = 0.0
        instrs = 0
        counts: Dict[str, int] = {}
        # Divergent-multiplicity groups: spec -> [cycles/_m, instrs/_m, counts/_m]
        groups: Dict[tuple, list] = {}
        for ins in block.instructions:
            if "batch_mult" in ins.attrs:
                items, spec = self.interp._batch_info(ins)
                if isinstance(spec, int):
                    m = spec
                    if m:
                        for key, c in items:
                            cycles += c * m
                            instrs += m
                            counts[key] = counts.get(key, 0) + m
                else:
                    g = groups.setdefault(spec, [0.0, 0, {}])
                    for key, c in items:
                        g[0] += c
                        g[1] += 1
                        g[2][key] = g[2].get(key, 0) + 1
            elif batched:
                raise CodegenBailout("mixed-batch-body")
            else:
                op = ins.opcode
                # The engines hardcode phi charges at 0.0 cycles.
                cycles += 0.0 if op == "phi" else cost(ins)
                instrs += 1
                counts[op] = counts.get(op, 0) + 1
                if op == "call":
                    callee = ins.operands[0]
                    if isinstance(callee, ExternalFunction):
                        label = f"ext:{callee.name}"
                        cycles += self._ext_cost(
                            callee, (o.type for o in ins.operands[1:])
                        )
                        instrs += 1
                        counts[label] = counts.get(label, 0) + 1
        checked = False
        if cycles:
            self.line(f"_s.cycles += {cycles!r}")
        if instrs:
            self.line(f"_s.instructions += {instrs}")
            checked = True
        for key, n in counts.items():
            self.line(f"_c[{key!r}] = _c.get({key!r}, 0) + {n}")
        for spec, (gcycles, ginstrs, gcounts) in groups.items():
            # Mirror Interpreter._batch_mult: the first live divergent
            # loop's activity count wins, the trailing static B backstops.
            lids: List[str] = []
            tail = 0
            for x in spec:
                if isinstance(x, int):
                    tail = x
                    break
                lids.append(x)
            expr = repr(tail)
            for lid in reversed(lids):
                expr = f"_act.get({lid!r}, {expr})"
            self.line(f"_m = {expr}")
            self.line("if _m:")
            self.indent += 1
            if gcycles:
                self.line(f"_s.cycles += {gcycles!r} * _m")
            self.line(f"_s.instructions += {ginstrs} * _m")
            for key, n in gcounts.items():
                mult = "_m" if n == 1 else f"{n} * _m"
                self.line(f"_c[{key!r}] = _c.get({key!r}, 0) + {mult}")
            self.indent -= 1
            checked = True
        if checked:
            self.line("if _s.instructions > _L:")
            self.line("    _trap(_interp, _fname)")

    # -- value emission ----------------------------------------------------------

    def emit_compute(self, ins) -> None:
        argrefs = [self.ref(o) for o in ins.operands]
        expr = self.interp._inline_expr(ins, argrefs, self.hoist)
        if expr is None:
            impl = self.hoist(
                self.interp._value_impl(ins), key=("impl", id(ins))
            )
            if ins.opcode in _REBIND_OPS:
                self.impl_instrs[impl] = ins
            expr = f"{impl}({', '.join(argrefs)})"
        self.line(f"{self.name_of(ins)} = {expr}")

    def emit_call(self, ins, batched: bool) -> None:
        callee = ins.operands[0]
        args = ", ".join(self.ref(o) for o in ins.operands[1:])
        if isinstance(callee, ExternalFunction):
            # Charges (the 'call' dispatch + ``ext:<name>`` leg, or the
            # batched narrow prototypes) live in the block prologue; only
            # the impl invocation remains here.
            impl = self.hoist(callee.impl, key=("ext", callee.name))
            self.line(f"{self.name_of(ins)} = {impl}({args})")
        elif batched:
            raise CodegenBailout("batched-internal-call")
        else:
            fref = self.hoist(callee, key=("fn", callee.name))
            self.line(
                f"{self.name_of(ins)} = _exec({fref}, [{args}], depth + 1)"
            )

    # -- edges -------------------------------------------------------------------

    def emit_phi_moves(self, src: BasicBlock, dst: BasicBlock) -> None:
        """Parallel phi assignment for the ``src``→``dst`` edge.  Phi
        charges are edge-independent and live in ``dst``'s prologue."""
        phis = []
        for ins in dst.instructions:
            if ins.opcode != "phi":
                break
            phis.append(ins)
        if not phis:
            return
        targets = [self.name_of(p) for p in phis]
        exprs = [self.ref(p.phi_value_for(src)) for p in phis]
        self.line(f"{', '.join(targets)} = {', '.join(exprs)}")

    def emit_edge(
        self,
        src: BasicBlock,
        target: BasicBlock,
        stop: Optional[BasicBlock],
        commit: Optional[List[str]] = None,
    ) -> None:
        """Tail-position edge inside a suite: commit + moves + jump/region."""
        for text in commit or ():
            self.line(text)
        self.emit_phi_moves(src, target)
        k = self.kind(target, stop)
        if k == "continue":
            self.line("continue")
        elif k == "break":
            self.line("break")
        elif k == "inline":
            self.emit_from(target, stop)
        # "stop": fall out of the suite.

    def _suite(self, emit_fn) -> None:
        self.indent += 1
        if self.indent > MAX_NESTING:
            raise CodegenBailout("deep-nesting")
        mark = len(self.lines)
        emit_fn()
        if len(self.lines) == mark:
            self.line("pass")
        self.indent -= 1

    # -- structure ---------------------------------------------------------------

    def emit_from(self, block: Optional[BasicBlock],
                  stop: Optional[BasicBlock]) -> None:
        """Emit the region starting at ``block`` until control reaches
        ``stop`` (not emitted), a jump, or a return."""
        while block is not None:
            if block is stop:
                return
            loop = self.loops_by_header.get(block)
            if loop is not None and block not in self.open_headers:
                exits = loop.exit_blocks()
                if len(exits) > 1:
                    raise CodegenBailout("multi-exit-loop")
                exit_b = exits[0] if exits else None
                self.line("while True:")
                self.open.append((loop, exit_b))
                self.open_headers.add(block)
                header = block
                self._suite(lambda: self.emit_from(header, None))
                self.open.pop()
                self.open_headers.discard(header)
                if exit_b is None:
                    return  # infinite loop: nothing after is reachable
                k = self.kind(exit_b, stop)
                if k == "inline":
                    block = exit_b
                    continue
                if k == "continue":
                    self.line("continue")
                elif k == "break":
                    self.line("break")
                return
            block = self.emit_block(block, stop)

    def emit_block(self, block: BasicBlock,
                   stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        """Emit one block's charges + body + terminator; returns the
        inline continuation block, or ``None`` when the suite ends here."""
        if block in self.emitted:
            raise CodegenBailout("block-re-emitted")
        self.emitted.add(block)
        instrs = block.instructions
        if not instrs or not instrs[-1].is_terminator:
            raise CodegenBailout("no-terminator")
        batched = self._is_batched(block)
        self.emit_charges(block, batched)
        nphi = 0
        while nphi < len(instrs) and instrs[nphi].opcode == "phi":
            nphi += 1
        body, term = instrs[nphi:-1], instrs[-1]
        for ins in body:
            op = ins.opcode
            if op == "call":
                self.emit_call(ins, batched)
            elif op in _GROUP_OPS:
                self.emit_compute(ins)
            else:
                raise CodegenBailout(f"opcode:{op}")
            if batched:
                ba = ins.attrs.get("batch_activity")
                if ba is not None:
                    mask = self.ref(ins.operands[0])
                    self.line(f"_pend[{ba[0]!r}] = _gac({mask}, {ba[1]})")
        return self.emit_terminator(block, term, stop, batched)

    def _unreachable_msg(self) -> str:
        return f"reached 'unreachable' in @{self.fn.name}"

    def emit_terminator(self, block: BasicBlock, term,
                        stop: Optional[BasicBlock],
                        batched: bool) -> Optional[BasicBlock]:
        op = term.opcode
        if op == "ret":
            if batched:
                raise CodegenBailout("batched-terminator:ret")
            if term.operands:
                v = term.operands[0]
                r = self.ref(v)
                if isinstance(v, (Constant, UndefValue)) and isinstance(
                    v.type, VectorType
                ):
                    # Shared constant payloads must not leak to callers
                    # who may mutate the returned array.
                    r = f"{r}.copy()"
                self.line(f"return {r}")
            else:
                self.line("return None")
            return None
        if op == "unreachable":
            self.line(f"raise _VMTrap({self._unreachable_msg()!r})")
            return None
        if op == "br":
            self.emit_phi_moves(block, term.operands[0])
            return self._goto(term.operands[0], stop)
        if op == "condbr":
            cond = self.ref(term.operands[0])
            commits: Optional[Tuple[List[str], List[str]]] = None
            backedge = term.attrs.get("batch_backedge") if batched else None
            if backedge is not None:
                # Divergent-loop backedge: this block's prologue charged
                # with the *previous* iteration's activity; commit the
                # count the mask reduction just produced before the next
                # iteration (or drop the loop's state on exit).
                lid, taken_idx = backedge
                commit = [f"_act[{lid!r}] = _pend[{lid!r}]"]
                drop = [f"_act.pop({lid!r}, None)", f"_pend.pop({lid!r}, None)"]
                commits = (commit, drop) if taken_idx == 1 else (drop, commit)
            return self.emit_condbr(
                block, cond, term.operands[1], term.operands[2], stop, commits
            )
        raise CodegenBailout(f"terminator:{op}")

    def _goto(self, target: BasicBlock,
              stop: Optional[BasicBlock]) -> Optional[BasicBlock]:
        """Unconditional transfer whose phi moves are already emitted."""
        k = self.kind(target, stop)
        if k == "inline":
            return target
        if k == "continue":
            self.line("continue")
        elif k == "break":
            self.line("break")
        return None

    def emit_condbr(
        self,
        src: BasicBlock,
        cond: str,
        iftrue: BasicBlock,
        iffalse: BasicBlock,
        stop: Optional[BasicBlock],
        commits: Optional[Tuple[List[str], List[str]]],
    ) -> Optional[BasicBlock]:
        """Structured lowering of a conditional branch; returns the inline
        continuation (the join) or ``None`` when the suite ends here."""
        ctrue = commits[0] if commits else None
        cfalse = commits[1] if commits else None
        ka = self.kind(iftrue, stop)
        kb = self.kind(iffalse, stop)

        if ka == "inline" and kb == "inline":
            # Forward diamond: the join is the immediate postdominator.
            join = self.pdom.get(src)
            if (
                join is not _EXIT
                and join is not None
                and self.kind(join, stop) == "inline"
            ):
                self.line(f"if {cond}:")
                self._suite(lambda: self.emit_edge(src, iftrue, join, ctrue))
                self.line("else:")
                self._suite(lambda: self.emit_edge(src, iffalse, join, cfalse))
                return join
            # No structural join (both arms return, or converge only at a
            # jump target): every path leaves its suite on its own.
            self.line(f"if {cond}:")
            self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
            self.line("else:")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            return None
        if ka != "inline" and kb != "inline":
            self.line(f"if {cond}:")
            self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
            self.line("else:")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            return None
        # Exactly one arm is inline.
        if ka == "inline":
            if kb == "stop":
                self.line(f"if {cond}:")
                self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
                self.line("else:")
                self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
                return None
            # False arm jumps; flatten: guard the jump, fall through inline.
            self.line(f"if not ({cond}):")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            for text in ctrue or ():
                self.line(text)
            self.emit_phi_moves(src, iftrue)
            return iftrue
        if ka == "stop":
            self.line(f"if {cond}:")
            self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
            self.line("else:")
            self._suite(lambda: self.emit_edge(src, iffalse, stop, cfalse))
            return None
        # True arm jumps; flatten.
        self.line(f"if {cond}:")
        self._suite(lambda: self.emit_edge(src, iftrue, stop, ctrue))
        for text in cfalse or ():
            self.line(text)
        self.emit_phi_moves(src, iffalse)
        return iffalse

    # -- entry -------------------------------------------------------------------

    def emit(self) -> Tuple[str, Dict[str, object]]:
        fn = self.fn
        size = sum(len(b.instructions) for b in fn.blocks)
        if size > MAX_CODEGEN_INSTRS:
            raise CodegenBailout("function-too-large")
        self.emit_from(fn.entry, None)
        body = self.lines
        head: List[str] = []
        if fn.args:
            names = ", ".join(self.names[a] for a in fn.args)
            head.append(f"    {names}{',' if len(fn.args) == 1 else ''} = _args")
        head.append("    _L = _interp.max_instructions")
        head.append("    _mk = _mem._brk")
        if fn.attrs.get("batched"):
            head.append("    _act = {}")
            head.append("    _pend = {}")
        head.append("    try:")
        tail = ["    finally:", "        _mem._brk = _mk"]
        params = ", ".join(f"{k}={k}" for k in self.hoisted)
        source = (
            f"def _kfn(_args, depth, {params}):\n"
            + "\n".join(head + body + tail)
        )
        return source, self.hoisted


def _fixed_bindings(interp, function: Function) -> Dict[str, object]:
    return {
        "_s": interp.stats,
        "_c": interp.stats.counts,
        "_interp": interp,
        "_mem": interp.memory,
        "_fname": function.name,
        "_trap": _budget_trap,
        "_exec": interp._exec_function,
        "_gac": gang_activity_count,
        "_VMTrap": VMTrap,
    }


def _emit_cache_key(function: Function):
    """Cache key stable across ``clone_module`` copies of one function.

    The driver's compile cache hands out a fresh clone per compile call,
    so object identity never repeats across runs; canonical modules are
    stamped with a process-unique ``emit_key`` attr that clones inherit.
    Block/instruction counts ride along as a structural guard: a pass
    mutating a clone *after* compilation (extra DCE, a test rewriting
    IR) changes the counts and misses rather than replaying stale code.
    Unstamped functions (hand-built IR, fault-injected compiles) fall
    back to object identity.
    """
    stamp = function.attrs.get("emit_key")
    if stamp is None:
        return function
    nblocks = len(function.blocks)
    ninstrs = sum(len(b.instructions) for b in function.blocks)
    return (stamp, nblocks, ninstrs)


def emit_function(interp, function: Function) -> Tuple[str, Dict[str, object]]:
    """Linearize ``function`` against ``interp``'s machine/cost bindings.

    Returns ``(source, bindings)``; raises :class:`CodegenBailout` when
    the function cannot be linearized.  Emissions (and bailouts) are
    cached per function/machine/cost-model — keyed structurally (see
    :func:`_emit_cache_key`), so a fresh interpreter over a fresh
    compile-cache clone of the same kernel reuses the cached source and
    only rebinds the prologue names plus the impl closures that capture
    interpreter memory.
    """
    key = _emit_cache_key(function)
    cache = _EMIT_CACHE if isinstance(key, tuple) else _EMIT_CACHE_BY_FN
    if cache is _EMIT_CACHE and len(cache) >= _EMIT_CACHE_CAPACITY:
        # Stamps of compile-cache-evicted modules accumulate; a blunt
        # reset only costs re-emission, never correctness.
        cache.clear()
    entries = cache.get(key)
    if entries is not None:
        for machine, cost_model, source, recipe, reason in entries:
            if machine is interp.machine and cost_model is interp.cost_model:
                if reason is not None:
                    raise CodegenBailout(reason)
                bindings = _fixed_bindings(interp, function)
                for name, ins, obj in recipe:
                    bindings[name] = (
                        obj if ins is None else interp._value_impl(ins)
                    )
                return source, bindings
    emitter = _Emitter(interp, function)
    try:
        source, bindings = emitter.emit()
    except CodegenBailout as exc:
        cache.setdefault(key, []).append(
            (interp.machine, interp.cost_model, None, None, exc.reason)
        )
        raise
    # Impl-closure entries store only the Instruction (the closure itself
    # captures the emitting interpreter's memory and must not be pinned).
    recipe = tuple(
        (name, ins, None if ins is not None else obj)
        for name, obj in bindings.items()
        if name not in _FIXED_BINDINGS
        for ins in (emitter.impl_instrs.get(name),)
    )
    cache.setdefault(key, []).append(
        (interp.machine, interp.cost_model, source, recipe, None)
    )
    return source, bindings


def compiled_code(source: str) -> Tuple[object, str]:
    """Code object for a generated source: process cache → disk → compile.

    Returns ``(code, origin)`` with origin in ``{"cache", "disk",
    "compiled"}`` for the ``vm.codegen.*`` counters.
    """
    code = _CODE_CACHE.get(source)
    if code is not None:
        return code, "cache"
    code = diskcache.load_code(source)
    if code is not None:
        _CODE_CACHE[source] = code
        return code, "disk"
    code = compile(source, "<repro-vm-codegen>", "exec")
    _CODE_CACHE[source] = code
    diskcache.store_code(source, code)
    return code, "compiled"


def bind_code(code, bindings: Dict[str, object]):
    """Bind a compiled code object to one interpreter's live payloads."""
    g = dict(bindings)
    # Empty-ish builtins keep emitted code honest (every name must be a
    # hoisted binding), but numpy's lazy C-level imports resolve
    # __import__ through the *calling* frame's builtins — leave it in or
    # the first .sum()/.any() ever run inside generated code dies with
    # KeyError('__import__').
    g["__builtins__"] = {"__import__": __import__}
    exec(code, g)
    return g["_kfn"]
