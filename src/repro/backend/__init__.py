"""``repro.backend`` — machine model, cost model, and legalization
(substitutes for the unmodified LLVM back-end of paper §4.3)."""

from .machine import AVX2, AVX512, ExecStats, Machine, SSE4
from .costmodel import CostModel, DEFAULT_COST_MODEL
from .legalize import legalize_function, legalize_module

__all__ = [
    "Machine", "AVX512", "AVX2", "SSE4", "ExecStats",
    "CostModel", "DEFAULT_COST_MODEL",
    "legalize_function", "legalize_module",
]
