"""Machine model: the SIMD CPU the compiled IR "runs" on.

This substitutes for the paper's Intel Xeon Gold 6258R with AVX-512
(§5): a single core with fixed-width SIMD registers.  The back-end
legalizes gang-width vector IR down to machine-width operations (§4.3) —
e.g. a gang-32 × i32 add (1024b) becomes two 512b machine ops — and the
cost model charges cycles per machine op.

The model is deliberately simple but captures the effects the paper's
evaluation turns on:

* packed loads/stores are roughly an order of magnitude cheaper than
  gather/scatter ("often no faster than performing each individual
  serialized scalar access", §4.2.2);
* uniform/indexed values stay in scalar registers and cost scalar rates;
* wide memory traffic is bandwidth-limited, so pure streaming kernels do
  not show unrealistic 64× speedups;
* complex horizontal ops (``sad``/vpsadbw) are single machine ops, which
  is why hand-written kernels edge out the vectorizer on a few kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..ir.types import Type, VectorType

__all__ = ["Machine", "AVX512", "AVX2", "SSE4", "ExecStats"]


@dataclass(frozen=True)
class Machine:
    """A SIMD CPU description.

    Attributes
    ----------
    name:
        Human-readable ISA name.
    vector_bits:
        SIMD register width; gang-width IR vectors are legalized into
        ``ceil(gang_bits / vector_bits)`` machine ops.
    mem_bandwidth_bytes:
        Sustained bytes transferable per cycle; wide memory ops pay
        ``bytes / mem_bandwidth_bytes`` cycles when that exceeds the issue
        cost.
    gather_lane_cost:
        Cycles per *lane* for gather/scatter (the serialization penalty).
    shuffle_cost:
        Cycles per machine op for cross-lane permutes.
    """

    name: str = "avx512"
    vector_bits: int = 512
    mem_bandwidth_bytes: float = 16.0
    gather_lane_cost: float = 2.0
    shuffle_cost: float = 2.0

    def lanes(self, elem_bits: int) -> int:
        """Native lane count for elements of the given width."""
        return self.vector_bits // elem_bits

    def legalize_factor(self, type: Type) -> int:
        """How many machine ops one IR op of this type legalizes into."""
        if not isinstance(type, VectorType):
            return 1
        bits = type.elem.bits * type.count
        if type.elem.bits == 1:
            # Masks live in predicate registers (AVX-512 k-regs).
            return 1
        return max(1, math.ceil(bits / self.vector_bits))


#: Default machine: 512-bit SIMD, mirroring the paper's AVX-512 testbed.
AVX512 = Machine(name="avx512", vector_bits=512)
#: Narrower machines, used for width-agnostic tests and ablations.
AVX2 = Machine(name="avx2", vector_bits=256)
SSE4 = Machine(name="sse4", vector_bits=128)


@dataclass
class ExecStats:
    """Counters accumulated by the VM while executing a function.

    ``cycles`` is the cost-model time; the per-opcode ``counts`` let tests
    assert instruction-selection properties (e.g. "no gathers emitted on a
    unit-stride kernel").
    """

    cycles: float = 0.0
    instructions: int = 0
    counts: Dict[str, int] = field(default_factory=dict)

    def charge(self, opcode: str, cycles: float) -> None:
        self.cycles += cycles
        self.instructions += 1
        self.counts[opcode] = self.counts.get(opcode, 0) + 1

    def merge(self, other: "ExecStats") -> None:
        self.cycles += other.cycles
        self.instructions += other.instructions
        for op, n in other.counts.items():
            self.counts[op] = self.counts.get(op, 0) + n

    def count(self, *opcodes: str) -> int:
        return sum(self.counts.get(op, 0) for op in opcodes)
