"""Type legalization: split gang-width vectors to machine width (§4.3).

"The back-end is also responsible for unrolling each vector instruction
if the IR instruction's vector width (i.e., usually the gang size) does
not match the width of the instructions available on the target."

This pass performs that unrolling as a real IR-to-IR transformation, the
way SelectionDAG does: every vector type has a *natural factor* (how many
machine registers it occupies); each instruction splits by the largest
factor among its result and operands; and values move between
granularities through extract-subvector shuffles (narrowing) and
shuffle2 concat trees (widening) — which is also where the real cost of
mixed-width code (e.g. ``zext <64 x i8> to <64 x i64>``) shows up as
pack/unpack shuffles, just like on x86.

i1 mask vectors have natural factor 1 (AVX-512 predicate registers);
consumers slice them to match their data chunks.

The default cost model already charges un-legalized wide ops equivalent
factors, so running the VM on legalized code must cost about the same
and produce identical results — checked by
``tests/backend/test_legalize.py``, which closes the loop between the
model and the real transformation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import Constant, Function, Instruction, Module, UndefValue, Value
from ..ir.cfg import reverse_postorder
from ..ir.instructions import (
    CAST_OPS,
    FLOAT_BINOPS,
    INT_BINOPS,
    REDUCE_OPS,
    UNARY_OPS,
)
from ..ir.module import BasicBlock, ExternalFunction
from ..ir.types import I1, I64, Type, VectorType, VOID
from .machine import Machine

__all__ = ["legalize_function", "legalize_module"]

_ELEMENTWISE = (
    INT_BINOPS | FLOAT_BINOPS | UNARY_OPS | CAST_OPS
    | {"icmp", "fcmp", "fma", "select"}
)


class _Legalizer:
    def __init__(self, function: Function, machine: Machine,
                 module: Optional[Module]):
        self.f = function
        self.machine = machine
        self.module = module
        #: wide value -> its stored chunk list.
        self.chunks: Dict[Value, List[Value]] = {}
        self._phi_fixups: List = []
        self._retired: List[Instruction] = []
        self._emit_list: Optional[List[Instruction]] = None

    # -- factors ---------------------------------------------------------------------

    def nat_factor(self, t: Type) -> int:
        if not isinstance(t, VectorType) or t.elem == I1:
            return 1
        return self.machine.legalize_factor(t)

    def split_factor(self, instr: Instruction) -> int:
        n = self.nat_factor(instr.type)
        for op in instr.operands:
            n = max(n, self.nat_factor(op.type))
            stored = self.chunks.get(op)
            if stored is not None:
                # An operand already split finer (e.g. an i1 mask produced by
                # a chunked i64 compare) drags its consumers along — for
                # void-typed consumers (stores/scatters) and for same-width
                # results.  Handlers with their own lane-count structure
                # (sad, shuffle) re-clamp internally.
                same_width = getattr(instr.type, "count", None) == op.type.count
                if instr.type.is_void or same_width:
                    n = max(n, len(stored))
        return n

    # -- emission --------------------------------------------------------------------

    def emit(self, opcode: str, rtype: Type, operands: List[Value], attrs=None) -> Instruction:
        new = Instruction(opcode, rtype, operands, "", dict(attrs or {}))
        self._emit_list.append(new)
        return new

    # -- value (re)chunking ------------------------------------------------------------

    def pieces(self, value: Value, n: int) -> List[Value]:
        """``value`` as exactly ``n`` equal vector pieces, rechunking as
        needed.  Constants and undefs split for free."""
        t = value.type
        assert isinstance(t, VectorType) and t.count % n == 0
        lanes = t.count // n
        ptype = VectorType(t.elem, lanes)
        if isinstance(value, Constant):
            payload = value.value
            return [
                Constant(ptype, list(payload[i * lanes : (i + 1) * lanes]))
                for i in range(n)
            ]
        if isinstance(value, UndefValue):
            return [UndefValue(ptype)] * n
        stored = self.chunks.get(value, [value])
        m = len(stored)
        if m == n:
            return stored
        if n > m:
            assert n % m == 0
            per = n // m
            out = []
            for chunk in stored:
                for k in range(per):
                    out.append(self._extract_sub(chunk, lanes, k * lanes))
            return out
        assert m % n == 0
        group = m // n
        return [self._concat(stored[j * group : (j + 1) * group]) for j in range(n)]

    def _extract_sub(self, chunk: Value, lanes: int, offset: int) -> Value:
        if lanes == chunk.type.count and offset == 0:
            return chunk
        idx = Constant(VectorType(I64, lanes), list(range(offset, offset + lanes)))
        return self.emit("shuffle", VectorType(chunk.type.elem, lanes), [chunk, idx])

    def _concat(self, parts: List[Value]) -> Value:
        level = list(parts)
        while len(level) > 1:
            merged = []
            for a, b in zip(level[::2], level[1::2]):
                lanes = a.type.count * 2
                idx = Constant(VectorType(I64, lanes), list(range(lanes)))
                merged.append(
                    self.emit("shuffle2", VectorType(a.type.elem, lanes), [a, b, idx])
                )
            if len(level) % 2:
                merged.append(level[-1])
            level = merged
        return level[0]

    # -- driver -------------------------------------------------------------------------

    def run(self) -> bool:
        if not any(
            self.split_factor(instr) > 1
            for instr in self.f.instructions()
            if not instr.is_terminator
        ):
            return False
        for block in reverse_postorder(self.f):
            self._legalize_block(block)
        for phi, incoming, n in self._phi_fixups:
            for value, pred in incoming:
                # Rechunking of the incoming value happens in the predecessor.
                self._emit_list = []
                value_pieces = self.pieces(value, n)
                insert_at = len(pred.instructions) - 1
                for offset, new in enumerate(self._emit_list):
                    pred.insert(insert_at + offset, new)
                    new.name = self.f.unique_name("legal")
                for chunk_phi, piece in zip(self.chunks[phi], value_pieces):
                    chunk_phi.append_operand(piece)
                    chunk_phi.append_operand(pred)
        self._erase_retired()
        return True

    def _erase_retired(self) -> None:
        retired = set(self._retired)
        for instr in self._retired:
            kept = [(u, i) for (u, i) in instr.uses if u not in retired]
            if kept:
                raise NotImplementedError(
                    f"unlegalized use of %{instr.name} ({instr.opcode}) by "
                    f"%{kept[0][0].name} ({kept[0][0].opcode})"
                )
            instr.uses = []
        for instr in self._retired:
            for idx, op in enumerate(instr._operands):
                entry = (instr, idx)
                if entry in op.uses:
                    op.uses.remove(entry)
            instr._operands = []
            if instr.parent is not None:
                instr.parent.instructions.remove(instr)
                instr.parent = None

    def _legalize_block(self, block: BasicBlock) -> None:
        index = 0
        while index < len(block.instructions):
            instr = block.instructions[index]
            if instr.is_terminator or self.split_factor(instr) == 1:
                index += 1
                continue
            self._emit_list = []
            self._split(instr)
            for offset, new in enumerate(self._emit_list):
                block.insert(index + offset, new)
                if not new.type.is_void and not new.name:
                    new.name = self.f.unique_name(instr.name or "legal")
            index += len(self._emit_list)
            # Consumers still reference the wide original; they are rewritten
            # as the walk reaches them and the originals erased at the end.
            self._retired.append(instr)
            index += 1

    # -- per-opcode splitting ----------------------------------------------------------

    def _split(self, instr: Instruction) -> None:
        op = instr.opcode
        n = self.split_factor(instr)

        if op in _ELEMENTWISE:
            pieces = [
                self.pieces(operand, n) if isinstance(operand.type, VectorType) else None
                for operand in instr.operands
            ]
            rlanes = instr.type.count // n
            self.chunks[instr] = [
                self.emit(
                    op,
                    VectorType(instr.type.elem, rlanes),
                    [
                        (p[j] if p is not None else operand)
                        for p, operand in zip(pieces, instr.operands)
                    ],
                    instr.attrs,
                )
                for j in range(n)
            ]
            return
        if op == "phi":
            rlanes = instr.type.count // n
            self.chunks[instr] = [
                self.emit("phi", VectorType(instr.type.elem, rlanes), [])
                for _ in range(n)
            ]
            self._phi_fixups.append((instr, list(instr.phi_incoming()), n))
            return
        if op == "broadcast":
            rlanes = instr.type.count // n
            one = self.emit(
                "broadcast", VectorType(instr.type.elem, rlanes), [instr.operands[0]]
            )
            self.chunks[instr] = [one] * n
            return
        if op == "vload":
            ptr, mask = instr.operands
            rlanes = instr.type.count // n
            mask_pieces = self.pieces(mask, n)
            out = []
            for j in range(n):
                cursor = ptr if j == 0 else self.emit(
                    "gep", ptr.type, [ptr, Constant(I64, j * rlanes)]
                )
                out.append(self.emit(
                    "vload", VectorType(instr.type.elem, rlanes),
                    [cursor, mask_pieces[j]],
                ))
            self.chunks[instr] = out
            return
        if op == "vstore":
            value, ptr, mask = instr.operands
            rlanes = value.type.count // n
            value_pieces = self.pieces(value, n)
            mask_pieces = self.pieces(mask, n)
            for j in range(n):
                cursor = ptr if j == 0 else self.emit(
                    "gep", ptr.type, [ptr, Constant(I64, j * rlanes)]
                )
                self.emit("vstore", VOID, [value_pieces[j], cursor, mask_pieces[j]])
            return
        if op == "gather":
            ptrs, mask = instr.operands
            rlanes = instr.type.count // n
            ptr_pieces = self.pieces(ptrs, n)
            mask_pieces = self.pieces(mask, n)
            self.chunks[instr] = [
                self.emit("gather", VectorType(instr.type.elem, rlanes),
                          [ptr_pieces[j], mask_pieces[j]])
                for j in range(n)
            ]
            return
        if op == "scatter":
            value, ptrs, mask = instr.operands
            value_pieces = self.pieces(value, n)
            ptr_pieces = self.pieces(ptrs, n)
            mask_pieces = self.pieces(mask, n)
            for j in range(n):
                self.emit("scatter", VOID,
                          [value_pieces[j], ptr_pieces[j], mask_pieces[j]])
            return
        if op in REDUCE_OPS:
            self._split_reduce(instr, n)
            return
        if op in ("mask_any", "mask_all", "mask_popcnt"):
            self._split_mask_query(instr, n)
            return
        if op == "extractelement":
            self._split_extract(instr, n)
            return
        if op == "insertelement":
            self._split_insert(instr, n)
            return
        if op == "shuffle":
            self._split_shuffle(instr)
            return
        if op == "sad":
            self._split_sad(instr, n)
            return
        if op == "call":
            self._split_call(instr, n)
            return
        raise NotImplementedError(f"legalize: opcode {op}")

    _REDUCE_COMBINE = {
        "reduce_add": "add", "reduce_and": "and", "reduce_or": "or",
        "reduce_min_s": "smin", "reduce_min_u": "umin",
        "reduce_max_s": "smax", "reduce_max_u": "umax",
    }

    def _split_reduce(self, instr: Instruction, n: int) -> None:
        src = instr.operands[0]
        parts = self.pieces(src, n)
        combine = self._REDUCE_COMBINE[instr.opcode]
        elem = src.type.elem
        if elem.is_float:
            combine = {
                "reduce_add": "fadd", "reduce_min_u": "fmin", "reduce_max_u": "fmax",
            }.get(instr.opcode, combine)
        level = list(parts)
        while len(level) > 1:
            merged = [
                self.emit(combine, a.type, [a, b])
                for a, b in zip(level[::2], level[1::2])
            ]
            if len(level) % 2:
                merged.append(level[-1])
            level = merged
        final = self.emit(instr.opcode, instr.type, [level[0]])
        instr.replace_all_uses_with(final)

    def _split_mask_query(self, instr: Instruction, n: int) -> None:
        parts = self.pieces(instr.operands[0], n)
        if instr.opcode == "mask_popcnt":
            counts = [self.emit("mask_popcnt", I64, [p]) for p in parts]
            total = counts[0]
            for count in counts[1:]:
                total = self.emit("add", I64, [total, count])
            instr.replace_all_uses_with(total)
            return
        combine = "or" if instr.opcode == "mask_any" else "and"
        bits = [self.emit(instr.opcode, I1, [p]) for p in parts]
        result = bits[0]
        for bit in bits[1:]:
            result = self.emit(combine, I1, [result, bit])
        instr.replace_all_uses_with(result)

    def _split_extract(self, instr: Instruction, n: int) -> None:
        vec, idx = instr.operands
        parts = self.pieces(vec, n)
        lanes = vec.type.count // n
        if isinstance(idx, Constant):
            j, sub = divmod(int(idx.value) % vec.type.count, lanes)
            final = self.emit(
                "extractelement", instr.type, [parts[j], Constant(I64, sub)]
            )
        else:
            final = self.emit("extractelement", instr.type, [parts[0], idx])
            shift = lanes.bit_length() - 1
            for j in range(1, n):
                hit = self.emit(
                    "icmp", I1,
                    [self.emit("lshr", I64, [idx, Constant(I64, shift)]),
                     Constant(I64, j)],
                    {"pred": "eq"},
                )
                alt = self.emit("extractelement", instr.type, [parts[j], idx])
                final = self.emit("select", instr.type, [hit, alt, final])
        instr.replace_all_uses_with(final)

    def _split_insert(self, instr: Instruction, n: int) -> None:
        vec, idx, value = instr.operands
        if not isinstance(idx, Constant):
            raise NotImplementedError("legalize: dynamic insertelement")
        parts = list(self.pieces(vec, n))
        lanes = vec.type.count // n
        j, sub = divmod(int(idx.value) % vec.type.count, lanes)
        parts[j] = self.emit(
            "insertelement", parts[j].type, [parts[j], Constant(I64, sub), value]
        )
        self.chunks[instr] = parts

    def _split_shuffle(self, instr: Instruction) -> None:
        src, idx = instr.operands
        src_n = max(1, self.nat_factor(src.type))
        src_n = max(src_n, len(self.chunks.get(src, [None])))
        out_n = max(1, self.nat_factor(instr.type),
                    len(self.chunks.get(idx, [None])))
        src_parts = self.pieces(src, src_n)
        src_lanes = src.type.count // src_n
        idx_parts = self.pieces(idx, out_n)
        out = []
        for idx_part in idx_parts:
            lanes = idx_part.type.count
            rtype = VectorType(src.type.elem, lanes)
            if isinstance(idx_part, Constant):
                # Constant permutes resolve chunk selection statically.
                wrapped = [int(v) % src.type.count for v in idx_part.value]
                needed = sorted({v // src_lanes for v in wrapped})
                result = None
                for j in needed:
                    part_idx = Constant(
                        VectorType(I64, lanes), [v % src_lanes for v in wrapped]
                    )
                    shuffled = self.emit("shuffle", rtype, [src_parts[j], part_idx])
                    if result is None:
                        result = shuffled
                    else:
                        pick = Constant(
                            VectorType(I1, lanes),
                            [1 if v // src_lanes == j else 0 for v in wrapped],
                        )
                        result = self.emit("select", rtype, [pick, shuffled, result])
                out.append(result)
                continue
            # Shuffle wraps indices modulo the *original* source width;
            # apply that wrap before chunk selection (widths are powers of 2).
            wrap = Constant(idx_part.type, [src.type.count - 1] * lanes)
            idx_eff = self.emit("and", idx_part.type, [idx_part, wrap])
            result = self.emit("shuffle", rtype, [src_parts[0], idx_eff])
            if src_n > 1:
                shift = src_lanes.bit_length() - 1
                div = self.emit(
                    "lshr", idx_eff.type,
                    [idx_eff, Constant(idx_eff.type, [shift] * lanes)],
                )
                for j in range(1, src_n):
                    hit = self.emit(
                        "icmp", VectorType(I1, lanes),
                        [div, Constant(idx_eff.type, [j] * lanes)],
                        {"pred": "eq"},
                    )
                    alt = self.emit("shuffle", rtype, [src_parts[j], idx_eff])
                    result = self.emit("select", rtype, [hit, alt, result])
            out.append(result)
        if out_n > 1:
            self.chunks[instr] = out
        else:
            instr.replace_all_uses_with(out[0])

    def _split_sad(self, instr: Instruction, n: int) -> None:
        a, b = instr.operands
        # sad works on groups of 8 u8 lanes: pieces cannot go below 8 lanes.
        n = min(n, a.type.count // 8)
        a_parts = self.pieces(a, n)
        b_parts = self.pieces(b, n)
        out = []
        for pa, pb in zip(a_parts, b_parts):
            rtype = VectorType(I64, pa.type.count // 8)
            out.append(self.emit("sad", rtype, [pa, pb]))
        if len(out) == 1:
            instr.replace_all_uses_with(out[0])
        elif self.nat_factor(instr.type) == len(out):
            self.chunks[instr] = out
        else:
            whole = self._concat(out)
            assert whole.type == instr.type
            instr.replace_all_uses_with(whole)

    def _split_call(self, instr: Instruction, n: int) -> None:
        callee = instr.operands[0]
        if not (isinstance(callee, ExternalFunction) and callee.name.startswith("ml.")):
            raise NotImplementedError(f"legalize: wide call to @{callee.name}")
        from ..runtime.mathlib import vector_math_external

        _, flavour, fn, _sig = callee.name.split(".")
        vt = instr.type
        lanes = vt.count // n
        narrow_ext = vector_math_external(self.module, fn, vt.elem, lanes, flavour)
        arg_pieces = [self.pieces(arg, n) for arg in instr.operands[1:]]
        self.chunks[instr] = [
            self.emit("call", VectorType(vt.elem, lanes),
                      [narrow_ext] + [pieces[j] for pieces in arg_pieces])
            for j in range(n)
        ]


def legalize_function(function: Function, machine: Machine,
                      module: Optional[Module] = None) -> bool:
    """Split all vector operations wider than the machine registers."""
    return _Legalizer(function, machine, module).run()


def legalize_module(module: Module, machine: Machine) -> bool:
    from ..ir.verifier import verify_function

    changed = False
    for function in module.functions.values():
        if not function.blocks:
            continue
        if legalize_function(function, machine, module):
            verify_function(function)
            changed = True
    return changed
