"""Gang-batching: execute B gangs of the SPMD variant per VM step.

The paper's back-end (§4.3) legalizes gang-width vector IR *down* to
machine width.  In this interpreted reproduction the economics are
inverted: numpy dispatch overhead is per-op, so wall-clock is dominated
by the gang loop re-dispatching the kernel body once per gang over tiny
8–32 lane arrays.  This pass widens the gang loop *up* — from G lanes to
G×B — so one trip through the loop body executes B gangs' worth of work
on arrays wide enough to amortize dispatch, the same way ispc's wider
targets amortize instruction count.

The rewrite runs after the whole optimization pipeline, on the final
module, and is paired with an untouched clone (the *fallback*) that the
driver stashes in ``module.attrs["batch_fallback"]``:

* **Structure.**  The canonical gang loop — single scalar induction
  ``p = phi [0, entry], [p + G, latch]`` tested ``icmp ult p, bound`` —
  is batched in place: its step becomes ``G·B``, its trip bound becomes
  ``n_batch = bound & -(G·B)``, and an unmodified clone of the loop (the
  *remainder loop*) picks up ``p`` at ``n_batch`` to run the last
  ``< B`` gangs one at a time at the original width.
* **Widening.**  Vector values inside the loop scale from G to G·B
  lanes; vector constants tile per gang; gang-width vectors defined
  outside the loop (LICM-hoisted splats) are tiled once in the header
  via a shuffle.  Scalars affine in ``__gang_base`` (``v = v0 +
  δ·gang_base``) stay scalar: the batched loop keeps gang 0's value, and
  every ``broadcast`` of a ``δ≠0`` scalar gains a per-gang offset vector
  ``+ k·δ·G`` (indexed shapes grow per-gang ``gang_base + stride``
  offset blocks; see :func:`widen_indexed_shape`).  Packed accesses
  whose address advances by exactly one element per thread widen in
  place; other affine loads become gathers over a per-lane offset table.
* **Accounting.**  Every original loop instruction is annotated with
  narrow *charge prototypes* plus a multiplicity (``B``, or the live
  gang count of the enclosing divergent loop), so the VM charges exactly
  what the unbatched engine would have — ``ExecStats`` stay bit-identical
  by construction.  Inserted helper instructions charge nothing; the
  gang backedge charges the whole per-gang loop overhead
  (phi/icmp/condbr/add/br) ×B.
* **Legality.**  Kernels using cross-gang-unsafe features — atomics,
  private allocas reused across gangs, scalar or scattered stores that
  may alias across gangs, ``psim.*`` sync, partial-fallback seams,
  non-affine gang-dependent scalars, values escaping the loop — are
  rejected with a reason (surfaced as ``vm.batch.rejected`` telemetry)
  and run unbatched.  Argument-rooted *loads* are assumed gang-
  independent: the SPMD model's unordered-threads contract already makes
  a cross-gang read-after-write a data race.
* **Traps.**  Any trap inside a batched run is replayed wholesale on the
  fallback module by the interpreter, so trap ordering, messages, and
  trap-point ``ExecStats`` stay bit-identical to the unbatched engine.
  Spurious batched-only traps (a finished gang's unmasked arithmetic
  feeding ``sdiv``, say) are therefore harmless: the replay completes
  cleanly and its results stand.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..diagnostics import emit_warning
from ..ir.cfg import Loop, find_loops, reverse_postorder
from ..ir.instructions import Instruction, REDUCE_OPS
from ..ir.module import BasicBlock, ExternalFunction, Function, Module
from ..ir.types import (
    IntType,
    PointerType,
    Type,
    VectorType,
    I1,
    I32,
    I64,
    VOID,
)
from ..ir.values import Argument, Constant, UndefValue, Value
from ..runtime.mathlib import vector_math_external
from ..vectorizer.shape import Shape
from ..vectorizer.shapes import widen_indexed_shape
from .costmodel import suggest_batch_factor

__all__ = ["batch_module", "batching_request", "select_batch_factor", "BatchReport"]


#: Opcodes that are never legal inside a batched gang loop.  Scalar
#: ``store``/``load`` are cross-gang hazards (a later gang may observe or
#: clobber an earlier gang's memory within one widened trip); the
#: horizontal ops reduce across lanes of *one* gang and have no
#: per-gang-block widening.
_FORBIDDEN = REDUCE_OPS | frozenset(
    """alloca atomicrmw extractelement insertelement shuffle shuffle2
       sad mask_popcnt mask_all store load scatter ret""".split()
)


class BatchReport(dict):
    """``{"factor": B, "applied": [...], "rejected": [(fn, loop, reason)]}``."""


def select_batch_factor(gang_size: int, requested: Optional[int] = None,
                        machine=None) -> int:
    """Resolve the batch factor for one gang loop.

    ``requested`` comes from ``REPRO_BATCH`` (rounded down to a power of
    two); ``None`` asks the cost model, which honors ``machine``'s
    register/lane width when one is given.  Returns 1 when batching is not
    worthwhile.
    """
    if requested is not None:
        if requested < 2:
            return 1
        b = 1
        while b * 2 <= requested:
            b *= 2
        return b
    return suggest_batch_factor(gang_size, machine)


def batching_request() -> Optional[int]:
    """Environment knobs: ``0`` = disabled, int = forced B, ``None`` = auto.

    An unparsable ``REPRO_BATCH`` is a *misconfiguration*, not a silent
    request for auto mode: it falls back to the cost model but emits a
    structured :class:`~repro.diagnostics.ReproWarning` saying so.
    """
    if os.environ.get("REPRO_NO_BATCH", "") in ("1", "true"):
        return 0
    forced = os.environ.get("REPRO_BATCH", "")
    if forced:
        try:
            return max(0, int(forced))
        except ValueError:
            emit_warning(
                f"unparsable REPRO_BATCH={forced!r} (expected an integer); "
                "falling back to cost-model batch selection",
                stage="backend",
                pass_name="batch",
                detail={"variable": "REPRO_BATCH", "value": forced},
            )
            return None
    return None


def _signed(c: Constant) -> int:
    """Integer constant payload as a signed value (payloads are stored in
    canonical two's-complement non-negative form)."""
    return int(c.as_signed())


# -- gang loop structural match ------------------------------------------------------


class _GangLoop:
    __slots__ = ("loop", "phi", "icmp", "condbr", "bound", "inc", "gang",
                 "entry_pred", "latch")

    def __init__(self, loop, phi, icmp, condbr, bound, inc, gang, entry_pred, latch):
        self.loop = loop
        self.phi = phi
        self.icmp = icmp
        self.condbr = condbr
        self.bound = bound
        self.inc = inc
        self.gang = gang
        self.entry_pred = entry_pred
        self.latch = latch


def _match_gang_loop(loop: Loop) -> Optional[_GangLoop]:
    """Recognize the canonical gang loop the driver's lowering emits.

    header: ``p = phi [0, entry], [p+G, latch]; icmp ult p, bound; condbr``
    with a step ``G >= 2`` (the gang size — step-1 loops are ordinary
    scalar loops and are left alone).  Non-power-of-two steps *match* so
    that :func:`batch_module` can reject them with a recorded reason
    instead of leaving the no-batch path silent.
    """
    header = loop.header
    latches = loop.latches
    if len(latches) != 1:
        return None
    latch = latches[0]
    phis = header.phis()
    if len(phis) != 1:
        return None
    p = phis[0]
    if isinstance(p.type, VectorType) or not isinstance(p.type, IntType):
        return None
    rest = header.non_phi_instructions()
    if len(rest) != 2:
        return None
    cmp, term = rest
    if (cmp.opcode != "icmp" or cmp.attrs.get("pred") != "ult"
            or cmp.operands[0] is not p):
        return None
    if term.opcode != "condbr" or term.operands[0] is not cmp:
        return None
    if term.operands[1] not in loop.blocks or term.operands[2] in loop.blocks:
        return None
    bound = cmp.operands[1]
    if isinstance(bound, Instruction) and bound.parent in loop.blocks:
        return None
    try:
        inc = p.phi_value_for(latch)
    except KeyError:
        return None
    if not (isinstance(inc, Instruction) and inc.opcode == "add"
            and inc.parent in loop.blocks and inc.operands[0] is p):
        return None
    step = inc.operands[1]
    if not isinstance(step, Constant) or isinstance(step.type, VectorType):
        return None
    gang = _signed(step)
    if gang < 2:
        return None
    entry_preds = [b for b in header.predecessors if b not in loop.blocks]
    if len(entry_preds) != 1:
        return None
    try:
        init = p.phi_value_for(entry_preds[0])
    except KeyError:
        return None
    if not (isinstance(init, Constant) and init.value == 0):
        return None
    return _GangLoop(loop, p, cmp, term, bound, inc, gang, entry_preds[0], latch)


# -- divergent inner loops -----------------------------------------------------------


class _DivergentLoop:
    __slots__ = ("loop", "lid", "mask_any", "condbr", "taken_idx")

    def __init__(self, loop, lid, mask_any, condbr, taken_idx):
        self.loop = loop
        self.lid = lid
        self.mask_any = mask_any
        self.condbr = condbr
        self.taken_idx = taken_idx


def _match_divergent_loop(inner: Loop, gang: int):
    """Canonical linearized divergent loop: exactly one exiting condbr
    whose condition is a ``mask_any`` over a G-lane mask, used only by
    that condbr.  Returns ``(_DivergentLoop | None, reason | None)``."""
    if len(inner.latches) != 1:
        return None, "divergent loop has multiple latches"
    exiting = inner.exiting_blocks()
    if len(exiting) != 1:
        return None, "divergent loop has multiple exits"
    term = exiting[0].terminator
    if term is None or term.opcode != "condbr":
        return None, "divergent loop exit is not a condbr"
    cond = term.operands[0]
    if not (isinstance(cond, Instruction) and cond.opcode == "mask_any"
            and cond.parent in inner.blocks):
        return None, "divergent backedge condition is not a mask_any"
    mask_t = cond.operands[0].type
    if not (isinstance(mask_t, VectorType) and mask_t.count == gang):
        return None, "divergent loop mask is not gang-wide"
    if any(u is not term for u, _ in cond.uses):
        return None, "mask_any escapes its backedge"
    taken_idx = 1 if term.operands[1] in inner.blocks else 2
    if term.operands[taken_idx] not in inner.blocks:
        return None, "divergent condbr has no in-loop edge"
    if term.operands[3 - taken_idx] in inner.blocks:
        return None, "divergent condbr never exits"
    for block in inner.blocks:
        for phi in block.phis():
            if not isinstance(phi.type, VectorType):
                return None, "scalar loop-carried state in divergent loop"
    return _DivergentLoop(inner, inner.header.name, cond, term, taken_idx), None


# -- affine (gang_base) classification -----------------------------------------------


def _affine_deltas(gl: _GangLoop, blocks_rpo: List[BasicBlock],
                   loop_blocks: Set[BasicBlock], skip: Set[Instruction]):
    """δ per scalar value, where ``v = v0 + δ·gang_base`` along the gang
    loop; ``None`` marks a gang-dependent scalar with no affine form.

    Values defined outside the loop are gang-invariant by definition
    (δ=0); constants and arguments likewise.  Returns ``(deltas,
    delta_of)`` where ``delta_of`` also resolves non-instruction values.
    """
    deltas: Dict[Value, Optional[int]] = {gl.phi: 1}

    def delta_of(v: Value) -> Optional[int]:
        if isinstance(v, Instruction):
            if v.parent not in loop_blocks:
                return 0
            return deltas.get(v)
        return 0  # constants, arguments, undef

    for block in blocks_rpo:
        for instr in block.instructions:
            if instr in skip or isinstance(instr.type, VectorType):
                continue
            op = instr.opcode
            ops = instr.operands
            if op in ("br", "condbr", "ret", "unreachable", "vstore",
                      "scatter", "store", "mask_any"):
                continue
            if any(isinstance(o.type, VectorType) for o in ops):
                deltas[instr] = None  # scalar extracted from vector state
                continue
            ds = [delta_of(o) for o in ops]
            d: Optional[int] = None
            if None not in ds:
                if op == "add":
                    d = ds[0] + ds[1]
                elif op == "sub":
                    d = ds[0] - ds[1]
                elif op == "mul":
                    if ds[0] == 0 and ds[1] == 0:
                        d = 0
                    elif isinstance(ops[1], Constant) and ds[1] == 0:
                        d = ds[0] * _signed(ops[1])
                    elif isinstance(ops[0], Constant) and ds[0] == 0:
                        d = ds[1] * _signed(ops[0])
                elif op == "shl":
                    if ds[0] == 0 and ds[1] == 0:
                        d = 0
                    elif isinstance(ops[1], Constant) and ds[1] == 0:
                        d = ds[0] * (1 << _signed(ops[1]))
                elif op == "gep":
                    d = ds[0] + ds[1] * instr.type.pointee.size_bytes()
                elif op in ("ptrtoint", "inttoptr"):
                    d = ds[0]
                elif all(x == 0 for x in ds):
                    # Any op over gang-invariant scalars is gang-invariant.
                    d = 0
            deltas[instr] = d
    return deltas, delta_of


# -- annotation helpers --------------------------------------------------------------


def _proto(instr: Instruction) -> Instruction:
    """A detached narrow charge prototype: same opcode/type/attrs, operand
    *types* preserved as undefs (the callee of a ``call`` is kept, so the
    VM can charge the narrow external's cost).  Built before widening, so
    the VM recomputes the exact narrow cost under whatever cost model and
    machine actually run."""
    operands = [
        op if isinstance(op, ExternalFunction) else UndefValue(op.type)
        for op in instr.operands
        if not isinstance(op, (BasicBlock, Function))
    ]
    return Instruction(instr.opcode, instr.type, operands, attrs=dict(instr.attrs))


def _scalar_proto(opcode: str, rtype: Type, operand_types=(), attrs=None) -> Instruction:
    return Instruction(
        opcode, rtype, [UndefValue(t) for t in operand_types], attrs=dict(attrs or {})
    )


def _annotate(instr: Instruction, charges: Tuple[Instruction, ...], mult) -> None:
    """Attach the accounting contract both downstream engines consume.

    The decoded engine reads these attrs per visit; the whole-kernel
    codegen emitter instead *specializes on them at emission time* —
    ``batch_mult`` ints become literal constants in the generated
    source and lid-tuple multiplicities become per-loop activity
    locals.  Because the generated code bakes these values in, the
    emission cache is keyed by a batch fingerprint (the ``batched``
    attr plus the annotated-instruction count): re-annotating a
    function with different values must re-emit, not reuse.
    """
    instr.attrs["batch_charges"] = charges
    instr.attrs["batch_mult"] = mult


# -- the rewrite ---------------------------------------------------------------------


def _batch_one_loop(function: Function, gl: _GangLoop, batch: int,
                    module: Module) -> Optional[str]:
    """Batch one matched gang loop in place; returns a rejection reason or
    ``None`` on success.  All legality checks run before any mutation."""
    loop = gl.loop
    gang = gl.gang
    wide = gang * batch
    loop_blocks = loop.blocks
    # Deterministic orders: function block order for rewriting, RPO for
    # the dataflow scan.
    ordered = [b for b in function.blocks if b in loop_blocks]
    rpo = [b for b in reverse_postorder(function) if b in loop_blocks]

    header_fixed = {gl.phi, gl.icmp, gl.condbr, gl.inc}

    # ---- legality: function- and loop-shape hazards --------------------------------
    for instr in function.instructions():
        if instr.opcode == "alloca":
            return "private alloca storage is reused across gangs"
    if gl.latch.terminator is None or gl.latch.terminator.opcode != "br":
        return "gang backedge is conditional"
    gang_exiting = [b for b in ordered
                    if any(s not in loop_blocks for s in b.successors)]
    if gang_exiting != [loop.header]:
        return "gang loop has side exits"

    # ---- legality: divergent inner loops -------------------------------------------
    inner_loops = [
        l for l in find_loops(function)
        if l.header is not loop.header
        and l.header in loop_blocks and l.blocks <= loop_blocks
    ]
    divergent: List[_DivergentLoop] = []
    control: Set[Instruction] = set()  # mask_any/condbr with a canonical role
    for inner in inner_loops:
        dl, reason = _match_divergent_loop(inner, gang)
        if dl is None:
            return reason
        divergent.append(dl)
        control.add(dl.mask_any)
        control.add(dl.condbr)

    # chain[block]: lids of enclosing divergent loops, innermost first,
    # ending in the static batch factor.  The VM resolves the first lid
    # with a live activity count (a divergent loop that has completed an
    # iteration knows how many gangs continue); before that it falls
    # through to the outer loop's count or to B.
    chain: Dict[BasicBlock, tuple] = {}
    for block in ordered:
        enclosing = sorted(
            (dl for dl in divergent if block in dl.loop.blocks),
            key=lambda dl: len(dl.loop.blocks),
        )
        chain[block] = tuple(dl.lid for dl in enclosing) + (batch,)

    # ---- legality: per-instruction scan --------------------------------------------
    for block in ordered:
        for instr in block.instructions:
            if instr in header_fixed or instr in control:
                continue
            op = instr.opcode
            if op in _FORBIDDEN:
                return f"{op} in gang loop"
            if op == "mask_any":
                return "mask_any outside a divergent backedge"
            if op == "call":
                callee = instr.operands[0]
                if isinstance(callee, Function):
                    return "internal call (partial-fallback seam) in gang loop"
                if not (isinstance(callee, ExternalFunction)
                        and callee.name.startswith("ml.")
                        and isinstance(instr.type, VectorType)
                        and len(callee.name.split(".")) == 4):
                    return f"cross-gang-unsafe call to {callee.name}"
            if op == "phi" and not isinstance(instr.type, VectorType) \
                    and instr is not gl.phi:
                return "scalar loop-carried state in gang loop"
            # Uniform vector width G throughout the loop.
            types = [instr.type] + [
                o.type for o in instr.operands
                if isinstance(o, (Instruction, Argument, Constant, UndefValue))
            ]
            for t in types:
                if isinstance(t, VectorType) and t.count != gang:
                    return "mixed vector widths in gang loop"
        for instr in block.instructions:
            for user, _ in instr.uses:
                if isinstance(user, Instruction) and user.parent not in loop_blocks:
                    return "value escapes the gang loop"

    # ---- legality: affine classification -------------------------------------------
    skip_affine = header_fixed | control
    deltas, delta_of = _affine_deltas(gl, rpo, loop_blocks, skip_affine)
    for block in rpo:
        for instr in block.instructions:
            if deltas.get(instr, 0) is None:
                return f"gang-dependent scalar {instr.opcode} is not affine"

    # ---- legality: memory access and branch forms ----------------------------------
    for block in ordered:
        for instr in block.instructions:
            if instr.opcode == "vstore":
                esize = instr.operands[0].type.elem.size_bytes()
                if delta_of(instr.operands[1]) != esize:
                    return "non-contiguous store may alias across gangs"
            elif instr.opcode == "vload":
                if delta_of(instr.operands[0]) is None:  # pragma: no cover
                    return "gang-dependent load address is not affine"
            elif (instr.opcode == "condbr" and instr not in control
                    and instr is not gl.condbr):
                if delta_of(instr.operands[0]) != 0:
                    return "gang-dependent scalar branch"

    # ======= point of no return: all checks passed, start mutating ==================

    # ---- remainder loop clone (of the still-unmodified loop) -----------------------
    from ..passes.clone import clone_blocks

    value_map: Dict[Value, Value] = {}
    clone_blocks(ordered, function, value_map, name_suffix=".rem")
    rheader = value_map[loop.header]
    rphi = value_map[gl.phi]
    # The remainder picks up the induction where the batched loop stops:
    # its entry edge becomes (p, batched-header) instead of (0, entry).
    for idx in range(1, len(rphi.operands), 2):
        if rphi.operands[idx] is gl.entry_pred:
            rphi.set_operand(idx - 1, gl.phi)
            rphi.set_operand(idx, loop.header)
            break

    # ---- annotate originals with narrow charge prototypes --------------------------
    ptype = gl.phi.type
    for block in ordered:
        mult = chain[block]
        for instr in block.instructions:
            if instr not in header_fixed:
                _annotate(instr, (_proto(instr),), mult)
    # Header bookkeeping executes once per *batched* iteration and charges
    # nothing; the backedge br instead charges the whole per-gang loop
    # overhead — phi copy, bound check, branch out of the header, the
    # induction add, and the backedge itself — ×B, which reconciles the
    # narrow engine's header accounting exactly.
    zero: Tuple[Instruction, ...] = ()
    for instr in (gl.phi, gl.icmp, gl.condbr, gl.inc):
        _annotate(instr, zero, 0)
    overhead = (
        _scalar_proto("br", VOID),
        _scalar_proto("phi", ptype),
        _scalar_proto("icmp", I1, (ptype, ptype), {"pred": "ult"}),
        _scalar_proto("condbr", VOID, (I1,)),
        _scalar_proto("add", ptype, (ptype, ptype)),
    )
    _annotate(gl.latch.terminator, overhead, batch)
    for dl in divergent:
        dl.mask_any.attrs["batch_activity"] = (dl.lid, batch, gang)
        dl.condbr.attrs["batch_backedge"] = (dl.lid, dl.taken_idx)

    # ---- rewire the batched loop ---------------------------------------------------
    header = loop.header
    n_batch = Instruction(
        "and", gl.bound.type,
        [gl.bound, Constant(gl.bound.type, -wide)],
        name=function.unique_name("batch.n"),
    )
    _annotate(n_batch, zero, 0)
    header.insert(header.first_non_phi_index(), n_batch)
    gl.icmp.set_operand(1, n_batch)
    exit_target = gl.condbr.operands[2]
    gl.condbr.set_operand(2, rheader)
    gl.inc.set_operand(1, Constant(ptype, wide))
    # The sole exit edge now leaves from the remainder header; exit-block
    # phis naming the batched header as predecessor must follow it.
    for phi in exit_target.phis():
        for idx in range(1, len(phi.operands), 2):
            if phi.operands[idx] is header:
                phi.set_operand(idx, rheader)

    # ---- widening ------------------------------------------------------------------
    inserted: Set[Instruction] = {n_batch}
    tiles: Dict[Value, Instruction] = {}

    def tile(v: Value) -> Instruction:
        """Widen a loop-invariant G-lane vector once, in the header."""
        existing = tiles.get(v)
        if existing is not None:
            return existing
        idx_const = Constant(VectorType(I32, wide), tuple(range(gang)) * batch)
        sh = Instruction(
            "shuffle", VectorType(v.type.elem, wide), [v, idx_const],
            name=function.unique_name("batch.tile"),
        )
        _annotate(sh, zero, 0)
        inserted.add(sh)
        header.insert(header.first_non_phi_index(), sh)
        tiles[v] = sh
        return sh

    def map_operand(v: Value) -> Optional[Value]:
        """Wide replacement for a narrow vector operand, or None to keep."""
        t = v.type
        if not (isinstance(t, VectorType) and t.count == gang):
            return None
        if isinstance(v, Instruction):
            if v.parent in loop_blocks:
                return None  # widened in place
            return tile(v)
        if isinstance(v, Constant):
            return Constant(VectorType(t.elem, wide), tuple(v.value) * batch)
        if isinstance(v, UndefValue):
            return UndefValue(VectorType(t.elem, wide))
        return tile(v)  # vector-typed argument

    for block in ordered:
        for instr in list(block.instructions):
            if instr in inserted or instr in header_fixed:
                continue
            op = instr.opcode

            if op == "broadcast":
                d = delta_of(instr.operands[0]) or 0
                instr.type = VectorType(instr.type.elem, wide)
                if d:
                    # Gang k's scalar is offset by k·δ·G from gang 0's;
                    # materialize the per-gang offset blocks and add them.
                    off = widen_indexed_shape(
                        Shape.uniform(gang), batch, d * gang
                    ).offsets
                    off_const = Constant(instr.type,
                                         tuple(int(x) for x in off))
                    adjusted = Instruction(
                        "add", instr.type, [instr, off_const],
                        name=function.unique_name("batch.off"),
                    )
                    _annotate(adjusted, zero, 0)
                    inserted.add(adjusted)
                    block.insert(block.instructions.index(instr) + 1, adjusted)
                    for user, idx in list(instr.uses):
                        if user is not adjusted and isinstance(user, Instruction):
                            user.set_operand(idx, adjusted)
                continue

            if op == "vload":
                addr = instr.operands[0]
                esize = instr.type.elem.size_bytes()
                d = delta_of(addr)
                if d != esize:
                    # Affine but non-contiguous across gangs (including
                    # gang-invariant): gather over a per-lane offset
                    # table.  Lane (k, i) reads  addr + i·esize + k·G·δ.
                    narrow_sh = Shape.indexed(
                        np.arange(gang, dtype=np.int64) * esize)
                    offs_arr = widen_indexed_shape(
                        narrow_sh, batch, gang * d).offsets
                    where = block.instructions.index(instr)
                    seq: List[Instruction] = []
                    if isinstance(addr.type, PointerType):
                        a_int = Instruction(
                            "ptrtoint", I64, [addr],
                            name=function.unique_name("batch.addr"))
                        seq.append(a_int)
                    else:  # pragma: no cover - addresses are pointers
                        a_int = addr
                    bcast = Instruction(
                        "broadcast", VectorType(I64, wide), [a_int],
                        name=function.unique_name("batch.abase"))
                    offs = Constant(VectorType(I64, wide),
                                    tuple(int(x) for x in offs_arr))
                    addv = Instruction(
                        "add", VectorType(I64, wide), [bcast, offs],
                        name=function.unique_name("batch.aoff"))
                    aptr = Instruction(
                        "inttoptr",
                        VectorType(PointerType(instr.type.elem), wide),
                        [addv], name=function.unique_name("batch.addrs"))
                    seq += [bcast, addv, aptr]
                    for j, ins in enumerate(seq):
                        _annotate(ins, zero, 0)
                        inserted.add(ins)
                        block.insert(where + j, ins)
                    instr.opcode = "gather"
                    instr.set_operand(0, aptr)
                instr.type = VectorType(instr.type.elem, wide)
                m = map_operand(instr.operands[1])
                if m is not None:
                    instr.set_operand(1, m)
                continue

            if op == "call":
                callee = instr.operands[0]
                parts = callee.name.split(".")  # ml.<flavour>.<fn>.<fN>x<G>
                wide_ext = vector_math_external(
                    module, parts[2], callee.ftype.ret.elem, wide, parts[1]
                )
                instr.set_operand(0, wide_ext)
                instr.type = VectorType(instr.type.elem, wide)
                for idx, o in enumerate(instr.operands):
                    if idx == 0:
                        continue
                    m = map_operand(o)
                    if m is not None:
                        instr.set_operand(idx, m)
                continue

            # Generic elementwise / vstore / mask_any / phi / condbr path.
            if isinstance(instr.type, VectorType) and instr.type.count == gang:
                instr.type = VectorType(instr.type.elem, wide)
            for idx, o in enumerate(instr.operands):
                m = map_operand(o)
                if m is not None:
                    instr.set_operand(idx, m)

    function.attrs["batched"] = batch
    return None


def batch_module(module: Module, requested: Optional[int] = None) -> BatchReport:
    """Batch every legal gang loop in ``module`` in place.

    Returns a :class:`BatchReport`.  Mutation happens only for loops that
    pass every legality check; the caller stashes an unbatched clone in
    ``module.attrs["batch_fallback"]`` when anything was applied.
    """
    applied: List[str] = []
    rejected: List[Tuple[str, str, str]] = []
    factor = 1
    for function in list(module.functions.values()):
        if function.spmd is not None or not function.blocks:
            continue  # SPMD variants are bodies, not drivers
        matches = [gl for loop in find_loops(function)
                   for gl in [_match_gang_loop(loop)] if gl is not None]
        # Process innermost candidates only: drop any match that contains
        # another matched gang loop.
        matches = [
            gl for gl in matches
            if not any(o is not gl and o.loop.header in gl.loop.blocks
                       for o in matches)
        ]
        for gl in matches:
            if gl.gang & (gl.gang - 1):
                # suggest_batch_factor returns 1 for these; surface the
                # silent no-batch path as an observable rejection.
                rejected.append((function.name, gl.loop.header.name,
                                 f"non-power-of-two gang size {gl.gang}"))
                continue
            b = select_batch_factor(gl.gang, requested)
            if b < 2:
                rejected.append((function.name, gl.loop.header.name,
                                 "gang already at the lane target"))
                continue
            reason = _batch_one_loop(function, gl, b, module)
            if reason is None:
                applied.append(f"{function.name}:{gl.loop.header.name}")
                factor = max(factor, b)
            else:
                rejected.append((function.name, gl.loop.header.name, reason))
    if not applied and not rejected:
        rejected.append(("<module>", "<none>", "no batchable gang loop found"))
    report = BatchReport(factor=factor if applied else 1,
                         applied=applied, rejected=rejected)
    module.attrs["batch_factor"] = report["factor"]
    module.attrs["batch_applied"] = list(applied)
    module.attrs["batch_rejected"] = [
        {"function": f, "loop": l, "reason": r} for f, l, r in rejected
    ]
    return report
