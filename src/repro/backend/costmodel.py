"""Cycle cost model.

Charges each executed IR instruction a cycle cost on a given
:class:`~repro.backend.machine.Machine`.  Vector ops pay the legalization
factor (§4.3: the back-end unrolls gang-width ops to machine width);
memory ops additionally pay a bandwidth term; gather/scatter pay a
per-lane serialization penalty.

The table is calibrated against published x86 reciprocal throughputs at
the granularity that matters for the paper's evaluation: relative costs of
scalar vs packed vs gathered access, cheap vertical ops vs multi-cycle
divide/sqrt, and single-op complex horizontals (``sad``).
"""

from __future__ import annotations

import math
from typing import Optional

from .. import faultinject
from ..ir.instructions import Instruction, REDUCE_OPS
from ..ir.types import Type, VectorType
from .machine import ExecStats, Machine

__all__ = ["CostModel", "DEFAULT_COST_MODEL", "TARGET_BATCHED_LANES",
           "MAX_LEGALIZE_OPS", "suggest_batch_factor"]

#: Lane target for the gang-batching layer.  numpy dispatch overhead is
#: per-op, so batching pays off until the arrays are a few hundred lanes
#: wide; past that the extra footprint stops buying anything and the
#: trap-replay restore cost grows with no return.
TARGET_BATCHED_LANES = 256

#: Machine-aware ceiling: a widened op should legalize into at most this
#: many machine ops for 32-bit elements, else the modeled back-end would
#: unroll one IR op into an unreasonable register-pressure blob.  At
#: AVX-512 widths (16 f32 lanes) this caps the batched width at
#: ``16 * 16 = 256`` lanes — exactly :data:`TARGET_BATCHED_LANES`, so the
#: default machine keeps the calibrated target; narrower machines scale
#: proportionally (AVX2 → 128 lanes, SSE4 → 64).
MAX_LEGALIZE_OPS = 16


def suggest_batch_factor(gang_size: int, machine: Optional[Machine] = None) -> int:
    """How many gangs the batching pass should fuse for ``gang_size``.

    Returns a power of two ``B >= 1`` such that ``gang_size * B`` is close
    to the lane target — :data:`TARGET_BATCHED_LANES`, capped at
    ``MAX_LEGALIZE_OPS * machine.lanes(32)`` when a ``machine`` is given so
    the batched vectors respect that machine's register/lane width.  ``1``
    means batching is not worth it (the gang is already at or past the
    target, or is not a power of two — the batching pass records the
    latter as a ``vm.batch.rejected`` reason).
    """
    if gang_size <= 0 or gang_size & (gang_size - 1):
        return 1
    target = TARGET_BATCHED_LANES
    if machine is not None:
        target = min(target, MAX_LEGALIZE_OPS * machine.lanes(32))
    factor = 1
    while gang_size * factor * 2 <= target:
        factor *= 2
    return factor

# Issue costs per (machine) op, in cycles.
_SIMPLE_INT = 1.0
_COST = {
    # integer
    "add": 1.0, "sub": 1.0, "mul": 1.0, "and": 1.0, "or": 1.0, "xor": 1.0,
    "not": 1.0, "shl": 1.0, "lshr": 1.0, "ashr": 1.0,
    "smin": 1.0, "smax": 1.0, "umin": 1.0, "umax": 1.0,
    "addsat_s": 1.0, "addsat_u": 1.0, "subsat_s": 1.0, "subsat_u": 1.0,
    "avg_u": 1.0, "abd_u": 1.0, "mulhi_s": 2.0, "mulhi_u": 2.0,
    "iabs": 1.0,
    "sdiv": 20.0, "udiv": 20.0, "srem": 20.0, "urem": 20.0,
    # float
    "fadd": 1.0, "fsub": 1.0, "fmul": 1.0, "fneg": 1.0, "fabs": 1.0,
    "fmin": 1.0, "fmax": 1.0, "fma": 1.0,
    "fdiv": 8.0, "frem": 20.0, "fsqrt": 9.0,
    # compares / select / casts
    "icmp": 1.0, "fcmp": 1.0, "select": 1.0,
    "trunc": 1.0, "zext": 1.0, "sext": 1.0, "bitcast": 0.0,
    "fptrunc": 2.0, "fpext": 2.0,
    "fptosi": 2.0, "fptoui": 2.0, "sitofp": 2.0, "uitofp": 2.0,
    "ptrtoint": 0.0, "inttoptr": 0.0,
    # scalar memory / addressing
    "load": 1.0, "store": 1.0, "gep": 0.5, "alloca": 0.0,
    "atomicrmw": 8.0,
    # control
    "br": 1.0, "condbr": 1.0, "ret": 1.0, "unreachable": 0.0, "phi": 0.0,
    # vector manipulation
    "broadcast": 1.0, "extractelement": 1.0, "insertelement": 1.0,
    "mask_any": 1.0, "mask_all": 1.0, "mask_popcnt": 2.0, "sad": 1.0,
    # call overhead (callee body is costed as it executes)
    "call": 2.0,
}


class CostModel:
    """Maps one dynamically-executed instruction to a cycle charge."""

    def __init__(self, table: Optional[dict] = None):
        self.table = dict(_COST)
        if table:
            self.table.update(table)

    def cost(self, instr: Instruction, machine: Machine) -> float:
        op = instr.opcode
        # Injection point for robustness tests; interpreters cache costs
        # per instruction object, so this is off the per-execution path.
        faultinject.maybe_fail("costmodel", op)
        itype = instr.type

        if op in ("vload", "vstore"):
            vec_t = itype if op == "vload" else instr.operands[0].type
            factor = machine.legalize_factor(vec_t)
            bandwidth = vec_t.size_bytes() / machine.mem_bandwidth_bytes
            return max(float(factor), bandwidth)
        if op in ("gather", "scatter"):
            vec_t = itype if op == "gather" else instr.operands[0].type
            return vec_t.count * machine.gather_lane_cost
        if op in ("shuffle", "shuffle2"):
            # Cross-register permutes pay for every source register touched
            # and for moving the index vector.
            factor = machine.legalize_factor(itype)
            src_factor = machine.legalize_factor(instr.operands[0].type)
            idx_factor = machine.legalize_factor(instr.operands[-1].type)
            return factor * machine.shuffle_cost * max(1, src_factor) + max(0, idx_factor - 1)
        if op in REDUCE_OPS:
            vec_t = instr.operands[0].type
            native = max(1, machine.lanes(vec_t.elem.bits))
            steps = math.ceil(math.log2(max(2, vec_t.count)))
            return float(steps + machine.legalize_factor(vec_t) - 1)
        if op == "load" and isinstance(itype, VectorType):  # defensive
            return machine.legalize_factor(itype)

        base = self.table.get(op)
        if base is None:
            base = _SIMPLE_INT
        # Type used for legalization: result type, or first operand's type
        # for void-typed ops (stores, branches).  Casts legalize at the
        # wider of their source/result widths (pack/unpack chains).
        legal_t = itype
        if itype.is_void and instr.operands:
            legal_t = instr.operands[0].type
        if instr.is_cast and instr.operands:
            src_t = instr.operands[0].type
            if isinstance(src_t, VectorType) and (
                not isinstance(legal_t, VectorType)
                or machine.legalize_factor(src_t) > machine.legalize_factor(legal_t)
            ):
                legal_t = src_t
        factor = machine.legalize_factor(legal_t) if isinstance(legal_t, VectorType) else 1
        if op in ("store",) and isinstance(legal_t, VectorType):
            bandwidth = legal_t.size_bytes() / machine.mem_bandwidth_bytes
            return max(float(factor), bandwidth)
        return base * factor

    def sequence_cost(self, instrs, machine: Machine) -> float:
        """Total charge for a superinstruction group.

        The accounting-transparency contract of the VM's decode-level
        fusion: a composite thunk charges exactly the sum of its
        constituents' individual costs — fusion changes dispatch overhead,
        never modeled cycles.  Kept as the single composite-cost query so a
        future discount for fused groups has one place to live.
        """
        return sum(self.cost(instr, machine) for instr in instrs)


#: Shared default instance.
DEFAULT_COST_MODEL = CostModel()
