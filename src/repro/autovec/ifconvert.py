"""If-conversion: flatten simple diamonds/triangles into selects.

The classical loop vectorizer cannot vectorize control flow, so it first
if-converts acyclic single-entry/single-exit conditionals whose sides are
safe to speculate.  Applied innermost-first, nested conditionals flatten
iteratively.  A store is allowed only when *both* sides store the same
type to the same address (merged into one unconditional store of a
selected value) — mirroring LLVM's conservative default rather than
masked-store if-conversion.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.instructions import Instruction
from ..ir.module import BasicBlock, Function
from ..ir.types import VOID
from ..ir.values import Value
from ..passes.simplify_cfg import simplify_cfg

__all__ = ["if_convert", "speculatable"]

_SAFE_OPS = frozenset(
    """add sub mul and or xor not shl lshr ashr smin smax umin umax
       addsat_s addsat_u subsat_s subsat_u mulhi_s mulhi_u avg_u abd_u
       iabs fneg fabs fsqrt fadd fsub fmul fmin fmax fma
       icmp fcmp select gep trunc zext sext fptrunc fpext fptosi fptoui
       sitofp uitofp bitcast ptrtoint inttoptr""".split()
)


def speculatable(instr: Instruction) -> bool:
    """Safe to execute regardless of the branch outcome."""
    return instr.opcode in _SAFE_OPS


def if_convert(function: Function, within: Optional[set] = None) -> bool:
    """Iteratively flatten convertible diamonds; returns True if changed."""
    changed = False
    progress = True
    while progress:
        progress = False
        for block in list(function.blocks):
            if within is not None and block not in within:
                continue
            if _convert_one(function, block):
                progress = True
                changed = True
                break
    if changed:
        simplify_cfg(function)
    return changed


def _convert_one(function: Function, head: BasicBlock) -> bool:
    term = head.terminator
    if term is None or term.opcode != "condbr":
        return False
    cond, then_b, else_b = term.operands
    if then_b is else_b:
        return False

    # Triangle: head -> {then, join}, then -> join.
    if _is_side(then_b, head) and then_b.successors == [else_b]:
        return _flatten(function, head, cond, then_b, None, else_b)
    if _is_side(else_b, head) and else_b.successors == [then_b]:
        return _flatten(function, head, cond, None, else_b, then_b)
    # Diamond: head -> {then, else} -> join.
    if (
        _is_side(then_b, head)
        and _is_side(else_b, head)
        and then_b.successors == else_b.successors
        and len(then_b.successors) == 1
    ):
        join = then_b.successors[0]
        return _flatten(function, head, cond, then_b, else_b, join)
    return False


def _is_side(block: BasicBlock, head: BasicBlock) -> bool:
    return block.predecessors == [head] and not block.phis()


def _same_address(a: Value, b: Value, depth: int = 8) -> bool:
    """Structural equality of address expressions (the two sides of a
    diamond compute their geps separately, so identity is not enough)."""
    if a is b:
        return True
    if depth == 0:
        return False
    if not (isinstance(a, Instruction) and isinstance(b, Instruction)):
        return False
    if a.opcode != b.opcode or a.type != b.type or a.attrs != b.attrs:
        return False
    if a.opcode in ("load", "call", "phi", "alloca", "atomicrmw"):
        return False  # not pure / not position-independent
    if len(a.operands) != len(b.operands):
        return False
    return all(
        _same_address(x, y, depth - 1) for x, y in zip(a.operands, b.operands)
    )


def _merged_stores(then_b, else_b) -> Optional[List]:
    """Pair up stores if both sides store to identical addresses in order."""
    then_stores = [i for i in (then_b.instructions if then_b else []) if i.opcode == "store"]
    else_stores = [i for i in (else_b.instructions if else_b else []) if i.opcode == "store"]
    if not then_stores and not else_stores:
        return []
    if len(then_stores) != len(else_stores):
        return None
    pairs = []
    for s1, s2 in zip(then_stores, else_stores):
        if not _same_address(s1.operands[1], s2.operands[1]):
            return None
        pairs.append((s1, s2))
    return pairs


def _flatten(function, head, cond, then_b, else_b, join) -> bool:
    store_pairs = _merged_stores(then_b, else_b)
    if store_pairs is None:
        return False
    paired = {s for pair in store_pairs for s in pair}
    for side in (then_b, else_b):
        if side is None:
            continue
        for instr in side.instructions[:-1]:
            if instr in paired:
                continue
            if not speculatable(instr):
                return False

    # Splice side instructions into head (before the terminator).
    insert_at = head.instructions.index(head.terminator)
    moved: List[Instruction] = []
    for side in (then_b, else_b):
        if side is None:
            continue
        for instr in side.instructions[:-1]:
            if instr in paired:
                continue
            side.instructions.remove(instr)
            instr.parent = head
            head.instructions.insert(insert_at, instr)
            insert_at += 1
            moved.append(instr)

    # Merge paired stores into one store of a selected value.
    for s_then, s_else in store_pairs:
        sel = Instruction(
            "select",
            s_then.operands[0].type,
            [cond, s_then.operands[0], s_else.operands[0]],
            function.unique_name("ifsel"),
        )
        head.instructions.insert(insert_at, sel)
        sel.parent = head
        insert_at += 1
        store = Instruction("store", VOID, [sel, s_then.operands[1]])
        head.instructions.insert(insert_at, store)
        store.parent = head
        insert_at += 1
        for old in (s_then, s_else):
            old.parent.instructions.remove(old)
            old.parent = None
            old.drop_operands()

    # Rewrite join phis into selects.
    for phi in list(join.phis()):
        incoming = {b: v for v, b in phi.phi_incoming()}
        then_v = incoming.get(then_b if then_b is not None else head)
        else_v = incoming.get(else_b if else_b is not None else head)
        if then_b is None:
            then_v = incoming.get(head)
        if else_b is None:
            else_v = incoming.get(head)
        others = {
            b: v for b, v in incoming.items() if b not in (then_b, else_b, head)
        }
        sel = Instruction(
            "select", phi.type, [cond, then_v, else_v], function.unique_name(phi.name)
        )
        head.instructions.insert(head.instructions.index(head.terminator), sel)
        sel.parent = head
        if not others:
            phi.replace_all_uses_with(sel)
            phi.erase()
        else:
            phi.drop_operands()
            for b, v in others.items():
                phi.append_operand(v)
                phi.append_operand(b)
            phi.append_operand(sel)
            phi.append_operand(head)

    # Collapse control flow: head branches straight to join.
    old_term = head.instructions.pop()
    old_term.drop_operands()
    old_term.parent = None
    head.append(Instruction("br", VOID, [join]))
    for side in (then_b, else_b):
        if side is not None:
            function.remove_block(side)
    return True
