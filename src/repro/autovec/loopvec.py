"""Classical innermost-loop auto-vectorization (the paper's baseline).

Implements the mainstream recipe (§2 "Auto-Vectorization"): canonical
induction recognition, if-conversion, affine dependence testing, then a
vector main loop with the original loop kept as the scalar remainder.
Like production loop vectorizers it is *opportunistic*: any construct it
cannot prove safe — loop-carried flow dependences within the vector
factor, non-affine addresses, wide strides, calls, divergent inner loops,
float reductions without fast-math — makes it give up on the loop, which
is exactly the behaviour the paper contrasts SPMD programming against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend.machine import Machine
from ..ir import Constant, Function, IRBuilder, Instruction, Module, UndefValue, Value
from ..ir.cfg import Loop, find_loops
from ..ir.instructions import CAST_OPS, FLOAT_BINOPS, INT_BINOPS, UNARY_OPS
from ..ir.module import BasicBlock, ExternalFunction
from ..ir.types import I1, I64, IntType, PointerType, Type, VectorType, VOID
from ..runtime.mathlib import SLEEF, vector_math_external
from .affine import Affine, AffineAnalysis
from .ifconvert import if_convert

__all__ = ["AutoVecConfig", "auto_vectorize_function", "auto_vectorize_module", "LoopVecReport"]


@dataclass
class AutoVecConfig:
    """Baseline vectorizer knobs (LLVM-ish defaults)."""

    #: Allow reassociating float reductions (LLVM requires -ffast-math).
    fast_math: bool = False
    #: Maximum interleave-group stride handled with shuffles (elements).
    max_stride: int = 4
    #: Emit gathers/scatters for unanalyzable addresses (off by default,
    #: like LLVM's cost model on most bodies).
    allow_gather: bool = False
    #: Vectorize libm calls through a vector math library.  Off by default:
    #: without -fveclib, LLVM cannot vectorize loops containing math calls,
    #: which is a major practical limiter of auto-vectorization (§2).
    vector_math: bool = False


@dataclass
class LoopVecReport:
    """What happened per function (for tests and the bench harness)."""

    vectorized: int = 0
    rejected: List[str] = None

    def __post_init__(self):
        if self.rejected is None:
            self.rejected = []


_REDUCTION_OPS = frozenset("add fadd and or smin smax umin umax fmin fmax".split())


class _Rejected(Exception):
    pass


def auto_vectorize_module(module: Module, machine: Machine,
                          config: Optional[AutoVecConfig] = None) -> Dict[str, LoopVecReport]:
    config = config or AutoVecConfig()
    reports = {}
    for function in list(module.functions.values()):
        if function.spmd is not None:
            continue  # SPMD regions belong to the Parsimony flow
        reports[function.name] = auto_vectorize_function(module, function, machine, config)
    return reports


def auto_vectorize_function(module: Module, function: Function, machine: Machine,
                            config: Optional[AutoVecConfig] = None) -> LoopVecReport:
    from ..passes import constant_fold, dce, loop_simplify, mem2reg, simplify_cfg

    config = config or AutoVecConfig()
    report = LoopVecReport()
    mem2reg(function)
    constant_fold(function)
    dce(function)
    simplify_cfg(function)
    loop_simplify(function)

    # Innermost loops only (no outer-loop vectorization, §2).
    progress = True
    vectorized_headers = set()
    while progress:
        progress = False
        loops = find_loops(function)
        for loop in loops:
            if not loop.is_innermost() or loop.header in vectorized_headers:
                continue
            try:
                _vectorize_loop(module, function, loop, machine, config)
            except _Rejected as why:
                report.rejected.append(f"{loop.header.name}: {why}")
                vectorized_headers.add(loop.header)  # don't retry
                continue
            report.vectorized += 1
            vectorized_headers.add(loop.header)
            constant_fold(function)
            dce(function)
            loop_simplify(function)
            progress = True
            break
    return report


# ---------------------------------------------------------------------------- legality


def _canonical_induction(loop: Loop):
    """Find (induction phi, init, bound, signed, cmp instr) for the pattern
    ``header: i = phi(init, i+1); if (i < N) body else exit``."""
    header = loop.header
    term = header.terminator
    if term is None or term.opcode != "condbr":
        raise _Rejected("no conditional exit at the loop header")
    if term.operands[1] in loop.blocks and term.operands[2] in loop.blocks:
        raise _Rejected("loop does not exit at the header")
    cond = term.operands[0]
    if not isinstance(cond, Instruction) or cond.opcode != "icmp":
        raise _Rejected("loop exit condition is not an integer compare")
    pred = cond.attrs["pred"]
    if pred not in ("slt", "ult"):
        raise _Rejected(f"unsupported loop predicate {pred!r}")
    if term.operands[1] not in loop.blocks:
        raise _Rejected("loop body on the false edge is unsupported")
    iv = cond.operands[0]
    bound = cond.operands[1]
    if isinstance(bound, Instruction) and bound.parent in loop.blocks:
        raise _Rejected("loop bound is not loop-invariant")
    latch = loop.latches[0]
    if not (isinstance(iv, Instruction) and iv.opcode == "phi" and iv.parent is header):
        raise _Rejected("compare operand is not a header phi")
    step = iv.phi_value_for(latch)
    if not (
        isinstance(step, Instruction)
        and step.opcode == "add"
        and (
            (step.operands[0] is iv and isinstance(step.operands[1], Constant)
             and step.operands[1].value == 1)
            or (step.operands[1] is iv and isinstance(step.operands[0], Constant)
                and step.operands[0].value == 1)
        )
    ):
        raise _Rejected("induction step is not +1")
    init = iv.phi_value_for(loop.preheader)
    return iv, step, init, bound, pred == "slt", cond


def _find_reductions(loop: Loop, iv, config: AutoVecConfig):
    """Header phis other than the induction must be reduction recurrences."""
    latch = loop.latches[0]
    reductions = []
    for phi in loop.header.phis():
        if phi is iv:
            continue
        update = phi.phi_value_for(latch)
        if not (isinstance(update, Instruction) and update.opcode in _REDUCTION_OPS):
            raise _Rejected(f"loop-carried phi %{phi.name} is not a reduction")
        if phi not in update.operands:
            raise _Rejected(f"recurrence %{phi.name} is not a simple reduction")
        if update.opcode == "fadd" and not config.fast_math:
            raise _Rejected(
                "float add reduction requires fast-math reassociation"
            )
        # The phi must feed only its own update (and uses outside the loop).
        for user in phi.users:
            if user is update:
                continue
            if isinstance(user, Instruction) and user.parent in loop.blocks:
                raise _Rejected(f"reduction %{phi.name} used inside the loop")
        for user in update.users:
            if user is phi:
                continue
            if isinstance(user, Instruction) and user.parent in loop.blocks:
                raise _Rejected(f"reduction update %{update.name} used inside the loop")
        reductions.append((phi, update))
    return reductions


def _classify_access(affine: Optional[Affine], elem: Type, config: AutoVecConfig) -> Tuple[str, int]:
    if affine is None:
        if config.allow_gather:
            return ("gather", 0)
        raise _Rejected("unanalyzable memory address")
    size = elem.size_bytes()
    if affine.coeff == 0:
        return ("invariant", 0)
    if affine.coeff == size:
        return ("unit", 1)
    if affine.coeff % size == 0:
        stride = affine.coeff // size
        if 2 <= stride <= config.max_stride:
            return ("strided", stride)
    if config.allow_gather:
        return ("gather", 0)
    raise _Rejected(f"stride of {affine.coeff} bytes is not vectorizable")


def _check_dependences(accesses, vf: int) -> None:
    """Affine dependence test: reject loop-carried conflicts within VF.

    ``accesses`` is in body (program) order.  A conflict with iteration
    distance ``0 < |Δ| < VF`` is safe only when the widened execution
    preserves the serial producer→consumer order: the vector body runs
    instruction by instruction with all VF lanes simultaneous, so a store
    feeding a *later* iteration's load (flow dep, Δ > 0) is only correct
    when the store instruction precedes the load in body order, and an
    anti dependence (Δ < 0) only when the load precedes the store.
    """
    indexed = list(enumerate(accesses))
    for s_pos, (a_store, s_inst, is_store) in indexed:
        if not is_store:
            continue
        if a_store is None:
            raise _Rejected("store through unanalyzable address")
        if a_store.coeff == 0:
            raise _Rejected("store to loop-invariant address")
        for o_pos, (a_other, o_inst, other_is_store) in indexed:
            if o_inst is s_inst:
                continue
            if a_other is None or not a_store.same_base(a_other):
                continue  # distinct symbolic bases: assumed no-alias
            if a_store.coeff != a_other.coeff:
                raise _Rejected("same-base accesses with different strides")
            delta_bytes = a_store.const - a_other.const
            if delta_bytes % a_store.coeff:
                continue  # never the same address
            # store at iteration k hits the other access of iteration k+delta
            delta = delta_bytes // a_store.coeff
            if delta == 0:
                if other_is_store:
                    raise _Rejected("two stores to the same address per iteration")
                continue  # same-iteration load+store: fine
            if 0 < abs(delta) < vf:
                if other_is_store:
                    raise _Rejected("loop-carried output dependence")
                load_first = o_pos < s_pos
                if delta > 0 and load_first:
                    raise _Rejected(
                        f"loop-carried flow dependence (distance {delta})"
                    )
                if delta < 0 and not load_first:
                    raise _Rejected(
                        f"loop-carried anti dependence (distance {-delta})"
                    )


_WIDENABLE = (
    INT_BINOPS | FLOAT_BINOPS | UNARY_OPS | CAST_OPS
    | {"icmp", "fcmp", "select", "fma", "gep"}
)


def _widest_bits(loop: Loop) -> int:
    """VF is chosen by the widest *data* type (loaded, stored, or reduced),
    as in LLVM; induction/address arithmetic in i64 does not count."""
    widest = 0
    for block in loop.blocks:
        for instr in block.instructions:
            if instr.opcode == "load":
                widest = max(widest, instr.type.bits)
            elif instr.opcode == "store":
                widest = max(widest, instr.operands[0].type.bits)
            elif instr.opcode == "phi" and instr.parent is loop.header:
                if instr.type.is_float:
                    widest = max(widest, instr.type.bits)
    return widest or 32


# ---------------------------------------------------------------------------- transform


def _vectorize_loop(module: Module, function: Function, loop: Loop,
                    machine: Machine, config: AutoVecConfig) -> None:
    if loop.preheader is None:
        raise _Rejected("no preheader")
    iv, step, init, bound, signed, exit_cmp = _canonical_induction(loop)

    # Flatten conditionals; re-check structure afterwards.
    if_convert(function, within=set(loop.blocks))
    loops = [l for l in find_loops(function) if l.header is loop.header]
    if not loops:
        raise _Rejected("loop vanished during if-conversion")
    loop = loops[0]
    blocks = _linear_blocks(loop)

    reductions = _find_reductions(loop, iv, config)
    affine = AffineAnalysis(loop, iv)

    # Legality walk + access classification.
    accesses = []  # (Affine, instr, is_store)
    body_instrs: List[Instruction] = []
    skip = {iv, step, exit_cmp}
    skip.update(phi for phi, _ in reductions)
    for block in blocks:
        for instr in block.instructions:
            if instr.is_terminator or instr in skip:
                continue
            if instr.opcode == "load":
                accesses.append((affine.analyze(instr.operands[0]), instr, False))
            elif instr.opcode == "store":
                accesses.append((affine.analyze(instr.operands[1]), instr, True))
            elif instr.opcode == "call":
                callee = instr.operands[0]
                if not (isinstance(callee, ExternalFunction) and callee.name.startswith("ml.")):
                    raise _Rejected(f"call to @{callee.name} in loop body")
                if not config.vector_math:
                    raise _Rejected(
                        f"math call @{callee.name} (no vector math library / -fveclib)"
                    )
            elif instr.opcode == "phi":
                raise _Rejected("control flow remains after if-conversion")
            elif instr.opcode not in _WIDENABLE:
                raise _Rejected(f"unvectorizable instruction {instr.opcode}")
            body_instrs.append(instr)

    # The induction step and exit compare are rewritten, not widened; they
    # must not feed anything else (or the mid-transform state would break).
    for special, allowed in ((step, {iv, exit_cmp}), (exit_cmp, set())):
        for user in special.users:
            if user is loop.header.terminator or user in allowed:
                continue
            raise _Rejected(f"%{special.name} has uses beyond loop control")

    widest = _widest_bits(loop)
    vf = max(2, machine.vector_bits // widest)
    for a, inst, is_store in accesses:
        elem = inst.type if inst.opcode == "load" else inst.operands[0].type
        _classify_access(a, elem, config)
    _check_dependences(accesses, vf)

    _emit_vector_loop(
        module, function, loop, blocks, iv, step, init, bound, signed,
        exit_cmp, reductions, affine, body_instrs, vf, config,
    )


def _linear_blocks(loop: Loop) -> List[BasicBlock]:
    """header -> ... -> latch straight-line chain, else reject."""
    chain = [loop.header]
    term = loop.header.terminator
    inside = [s for s in term.successors() if s in loop.blocks]
    if len(inside) != 1:
        raise _Rejected("multiple exits / irregular header")
    block = inside[0]
    seen = {loop.header}
    while True:
        if block in seen:
            raise _Rejected("inner cycle")
        seen.add(block)
        chain.append(block)
        succs = block.successors
        if len(succs) != 1 or succs[0] not in loop.blocks:
            if succs == [loop.header]:
                return chain
            raise _Rejected("loop body is not straight-line after if-conversion")
        if succs[0] is loop.header:
            return chain
        block = succs[0]


def _emit_vector_loop(module, function, loop, blocks, iv, step, init, bound, signed,
                      exit_cmp, reductions, affine, body_instrs, vf, config) -> None:
    ity = iv.type
    preheader = loop.preheader
    header = loop.header
    b = IRBuilder(function)

    # --- vpre: guard the vector loop on at least one full chunk.
    vpre = function.add_block("vec.pre", before=header)
    vloop = function.add_block("vec.loop", before=header)
    vexit = function.add_block("vec.exit", before=header)
    # Redirect preheader -> vpre.
    pre_term = preheader.terminator
    for idx, op in enumerate(pre_term.operands):
        if op is header:
            pre_term.set_operand(idx, vpre)
    b.position_at_end(vpre)
    vf_c = Constant(ity, vf)
    first_end = b.add(init, vf_c, "vec.first_end")
    enter = b.icmp("sle" if signed else "ule", first_end, bound, "vec.enter")
    b.condbr(enter, vloop, header)

    # --- vloop: phis.
    b.position_at_end(vloop)
    viv = b.phi(ity, "vec.iv")
    viv.append_operand(init)
    viv.append_operand(vpre)
    vaccs: Dict[Instruction, Instruction] = {}
    for phi, update in reductions:
        vacc = b.phi(VectorType(phi.type, vf), "vec." + phi.name)
        vacc.append_operand(_reduction_identity(update.opcode, phi.type, vf))
        vacc.append_operand(vpre)
        vaccs[phi] = vacc

    emitter = _BodyEmitter(module, function, b, loop, affine, iv, viv, vf, config)
    for phi, update in reductions:
        emitter.vec[phi] = vaccs[phi]
    for instr in body_instrs:
        emitter.emit(instr)

    iv_next = b.add(viv, vf_c, "vec.iv.next")
    viv.append_operand(iv_next)
    viv.append_operand(b.block)
    for phi, update in reductions:
        vaccs[phi].append_operand(emitter.vec[update])
        vaccs[phi].append_operand(b.block)
    next_end = b.add(iv_next, vf_c, "vec.next_end")
    again = b.icmp("sle" if signed else "ule", next_end, bound, "vec.again")
    if b.block is not vloop:
        raise _Rejected("vector body unexpectedly created control flow")
    b.condbr(again, vloop, vexit)

    # --- vexit: horizontal reductions, then fall into the scalar remainder.
    b.position_at_end(vexit)
    red_final: Dict[Instruction, Value] = {}
    for phi, update in reductions:
        # Reduce the post-update value of the final iteration, not the phi.
        red_final[phi] = _final_reduce(b, update.opcode, emitter.vec[update],
                                       phi.phi_value_for(preheader), phi.type)
    b.br(header)

    # --- scalar remainder: original loop, re-seeded.
    for phi in header.phis():
        start = phi.phi_value_for(preheader)
        ops = list(phi.operands)
        phi.drop_operands()
        for i in range(0, len(ops), 2):
            if ops[i + 1] is preheader:
                continue
            phi.append_operand(ops[i])
            phi.append_operand(ops[i + 1])
        if phi is iv:
            phi.append_operand(init)
            phi.append_operand(vpre)
            phi.append_operand(iv_next)
            phi.append_operand(vexit)
        elif phi in red_final:
            phi.append_operand(start)
            phi.append_operand(vpre)
            phi.append_operand(red_final[phi])
            phi.append_operand(vexit)
        else:  # pragma: no cover - rejected earlier
            raise _Rejected("unexpected header phi")


def _reduction_identity(opcode: str, type: Type, vf: int) -> Constant:
    if opcode in ("add", "fadd", "or", "xor"):
        value = 0.0 if type.is_float else 0
    elif opcode == "and":
        value = (1 << type.bits) - 1
    elif opcode in ("smin",):
        value = (1 << (type.bits - 1)) - 1
    elif opcode in ("smax",):
        value = 1 << (type.bits - 1)
    elif opcode in ("umin",):
        value = (1 << type.bits) - 1
    elif opcode in ("umax",):
        value = 0
    elif opcode in ("fmin",):
        value = float("inf")
    elif opcode in ("fmax",):
        value = float("-inf")
    else:  # pragma: no cover
        raise _Rejected(f"no identity for reduction {opcode}")
    return Constant(VectorType(type, vf), [value] * vf)


def _final_reduce(b: IRBuilder, opcode: str, vacc: Value, start: Value, type: Type) -> Value:
    table = {
        "add": "reduce_add", "fadd": "reduce_add",
        "and": "reduce_and", "or": "reduce_or",
        "smin": "reduce_min_s", "smax": "reduce_max_s",
        "umin": "reduce_min_u", "umax": "reduce_max_u",
        "fmin": "reduce_min_u", "fmax": "reduce_max_u",
    }
    partial = b.reduce(table[opcode], vacc, "vec.red")
    return b.binop(opcode, start, partial, "vec.red.final")


class _BodyEmitter:
    """Widen one straight-line loop body by VF."""

    def __init__(self, module, function, b: IRBuilder, loop, affine: AffineAnalysis,
                 iv, viv, vf: int, config: AutoVecConfig):
        self.module = module
        self.function = function
        self.b = b
        self.loop = loop
        self.affine = affine
        self.iv = iv
        self.viv = viv
        self.vf = vf
        self.config = config
        self.vec: Dict[Value, Value] = {}
        self.scalar_clone: Dict[Value, Value] = {iv: viv}
        self._mask = Constant(VectorType(I1, vf), [1] * vf)

    # -- operand helpers --------------------------------------------------------

    def widen(self, value: Value) -> Value:
        if value in self.vec:
            return self.vec[value]
        if isinstance(value, Constant):
            return Constant(VectorType(value.type, self.vf), [value.value] * self.vf)
        if isinstance(value, UndefValue):
            return UndefValue(VectorType(value.type, self.vf))
        if value is self.iv:
            lanes = Constant(VectorType(value.type, self.vf), list(range(self.vf)))
            splat = self.b.broadcast(self.viv, self.vf, "vec.ivsplat")
            wide = self.b.add(splat, lanes, "vec.ivvec")
            self.vec[value] = wide
            return wide
        if isinstance(value, Instruction) and value.parent in self.loop.blocks:
            raise _Rejected(f"no widened form for %{value.name}")
        # Loop-invariant: broadcast at first use.
        wide = self.b.broadcast(value, self.vf, "vec.splat")
        self.vec[value] = wide
        return wide

    def clone_scalar(self, value: Value) -> Value:
        """Scalar clone of an address expression with iv substituted."""
        if value in self.scalar_clone:
            return self.scalar_clone[value]
        if not isinstance(value, Instruction) or value.parent not in self.loop.blocks:
            return value
        operands = [self.clone_scalar(o) for o in value.operands]
        clone = Instruction(value.opcode, value.type, operands,
                            self.function.unique_name("vec." + value.name),
                            dict(value.attrs))
        self.b.insert(clone)
        self.scalar_clone[value] = clone
        return clone

    # -- instruction widening ------------------------------------------------------

    def emit(self, instr: Instruction) -> None:
        op = instr.opcode
        if op == "load":
            self.vec[instr] = self._emit_load(instr)
            return
        if op == "store":
            self._emit_store(instr)
            return
        if op == "call":
            callee = instr.operands[0]
            fn_name = callee.name.split(".")[1]
            ext = vector_math_external(self.module, fn_name, instr.type, self.vf, SLEEF)
            args = [self.widen(a) for a in instr.operands[1:]]
            self.vec[instr] = self.b.call(ext, args, "vec." + instr.name)
            return
        if op == "gep":
            return  # geps are consumed by loads/stores via clone/affine paths
        operands = [self.widen(o) for o in instr.operands]
        rtype = VectorType(instr.type, self.vf) if not instr.type.is_vector else instr.type
        new = Instruction(op, rtype, operands,
                          self.function.unique_name("vec." + instr.name),
                          dict(instr.attrs))
        self.b.insert(new)
        self.vec[instr] = new

    def _emit_load(self, instr: Instruction) -> Value:
        addr = instr.operands[0]
        form = self.affine.analyze(addr)
        kind, stride = _classify_access(form, instr.type, self.config)
        if kind == "invariant":
            scalar = self.b.load(self.clone_scalar(addr), "vec." + instr.name)
            return self.b.broadcast(scalar, self.vf, "vec." + instr.name)
        base = self.clone_scalar(addr)
        if kind == "unit":
            return self.b.vload(base, self.vf, self._mask, "vec." + instr.name)
        if kind == "strided":
            return self._window_load(base, stride, instr)
        return self._gather(base, form, instr)

    def _window_load(self, base: Value, stride: int, instr: Instruction) -> Value:
        vf = self.vf
        rel = np.arange(vf, dtype=np.int64) * stride
        idx = Constant(VectorType(I64, vf), [int(e) for e in rel])
        positions = set(int(e) for e in rel)
        result = None
        for j in range(stride):
            ptr = self.b.gep(base, Constant(I64, j * vf)) if j else base
            needed = Constant(
                VectorType(I1, vf),
                [1 if (j * vf + p) in positions else 0 for p in range(vf)],
            )
            part = self.b.vload(ptr, vf, needed, f"vec.{instr.name}.w{j}")
            shuffled = self.b.shuffle(part, idx, f"vec.{instr.name}.s{j}")
            if result is None:
                result = shuffled
            else:
                pick = Constant(
                    VectorType(I1, vf), [1 if e // vf == j else 0 for e in rel]
                )
                result = self.b.select(pick, shuffled, result)
        return result

    def _gather(self, base: Value, form, instr: Instruction) -> Value:
        addr_scalar = self.b.ptrtoint(base, I64)
        splat = self.b.broadcast(addr_scalar, self.vf)
        offs = Constant(
            VectorType(I64, self.vf),
            [form.coeff * lane for lane in range(self.vf)] if form else [0] * self.vf,
        )
        ptrs = self.b.inttoptr(
            self.b.add(splat, offs), VectorType(instr.operands[0].type, self.vf)
        )
        return self.b.gather(ptrs, self._mask, "vec." + instr.name)

    def _emit_store(self, instr: Instruction) -> None:
        value, addr = instr.operands
        form = self.affine.analyze(addr)
        kind, stride = _classify_access(form, value.type, self.config)
        wide = self.widen(value)
        base = self.clone_scalar(addr)
        if kind == "unit":
            self.b.vstore(wide, base, self._mask)
            return
        if kind == "strided":
            self._window_store(base, stride, wide)
            return
        raise _Rejected(f"cannot vectorize store of kind {kind}")

    def _window_store(self, base: Value, stride: int, wide: Value) -> None:
        vf = self.vf
        rel = np.arange(vf, dtype=np.int64) * stride
        for j in range(stride):
            inv = [0] * vf
            valid = [0] * vf
            for lane, e in enumerate(rel):
                e = int(e)
                if j * vf <= e < (j + 1) * vf:
                    inv[e - j * vf] = lane
                    valid[e - j * vf] = 1
            if not any(valid):
                continue
            invc = Constant(VectorType(I64, vf), inv)
            wvals = self.b.shuffle(wide, invc)
            wmask = Constant(VectorType(I1, vf), valid)
            ptr = self.b.gep(base, Constant(I64, j * vf)) if j else base
            self.b.vstore(wvals, ptr, wmask)
