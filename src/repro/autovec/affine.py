"""Affine (SCEV-lite) analysis of values relative to a loop induction.

Classifies integer/pointer values inside a loop as ``sym + coeff·i +
const`` where ``i`` is the canonical induction variable, ``coeff`` and
``const`` are compile-time integers, and ``sym`` is a canonical form of
the loop-invariant symbolic part.  This powers the classical loop
vectorizer's two decisions (paper §2: "alias analysis as well as
target-dependent heuristics"):

* **access classification** — unit-stride / small-stride / unanalyzable;
* **dependence testing** — two accesses with the same symbolic base
  conflict across iterations when ``coeff·Δ == const₁ - const₂`` for an
  integer Δ; flow dependences with ``0 < Δ < VF`` block vectorization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..ir.cfg import Loop
from ..ir.instructions import Instruction
from ..ir.values import Constant, Value

__all__ = ["Affine", "AffineAnalysis"]


@dataclass(frozen=True)
class Affine:
    """``sym + coeff·i + const`` (sym: multiset of (value-id, factor))."""

    coeff: int
    const: int
    sym: FrozenSet[Tuple[int, int]]  # frozenset of (id(value), factor)

    def same_base(self, other: "Affine") -> bool:
        return self.sym == other.sym

    @property
    def is_invariant(self) -> bool:
        return self.coeff == 0


def _sym_add(a: FrozenSet, b: FrozenSet) -> FrozenSet:
    combined: Dict[int, int] = {}
    for vid, factor in list(a) + list(b):
        combined[vid] = combined.get(vid, 0) + factor
    return frozenset((vid, f) for vid, f in combined.items() if f != 0)


def _sym_scale(a: FrozenSet, k: int) -> Optional[FrozenSet]:
    if k == 0:
        return frozenset()
    return frozenset((vid, f * k) for vid, f in a)


class AffineAnalysis:
    """Computes affine forms for values in one loop."""

    def __init__(self, loop: Loop, induction: Value):
        self.loop = loop
        self.induction = induction
        self._cache: Dict[Value, Optional[Affine]] = {}
        self._in_flight: Set[int] = set()

    def analyze(self, value: Value) -> Optional[Affine]:
        """Affine form of ``value`` relative to the induction, or None."""
        if value in self._cache:
            return self._cache[value]
        if id(value) in self._in_flight:
            return None  # cyclic (non-induction recurrence)
        self._in_flight.add(id(value))
        try:
            result = self._compute(value)
        finally:
            self._in_flight.discard(id(value))
        self._cache[value] = result
        return result

    def _compute(self, value: Value) -> Optional[Affine]:
        if value is self.induction:
            return Affine(coeff=1, const=0, sym=frozenset())
        if isinstance(value, Constant) and value.type.is_int:
            return Affine(coeff=0, const=value.as_signed(), sym=frozenset())
        if not isinstance(value, Instruction) or value.parent not in self.loop.blocks:
            # Loop-invariant: a pure symbol.
            return Affine(coeff=0, const=0, sym=frozenset([(id(value), 1)]))

        op = value.opcode
        ops = value.operands
        if op == "add":
            a, b = self.analyze(ops[0]), self.analyze(ops[1])
            if a is None or b is None:
                return None
            return Affine(a.coeff + b.coeff, a.const + b.const, _sym_add(a.sym, b.sym))
        if op == "sub":
            a, b = self.analyze(ops[0]), self.analyze(ops[1])
            if a is None or b is None:
                return None
            neg = _sym_scale(b.sym, -1)
            return Affine(a.coeff - b.coeff, a.const - b.const, _sym_add(a.sym, neg))
        if op == "mul":
            a, b = self.analyze(ops[0]), self.analyze(ops[1])
            if a is None or b is None:
                return None
            for x, y in ((a, b), (b, a)):
                if x.coeff == 0 and not x.sym:  # pure constant factor
                    sym = _sym_scale(y.sym, x.const)
                    if sym is None:
                        return None
                    return Affine(y.coeff * x.const, y.const * x.const, sym)
            return None
        if op == "shl":
            a = self.analyze(ops[0])
            b = self.analyze(ops[1])
            if a is None or b is None or b.coeff != 0 or b.sym:
                return None
            k = 1 << b.const
            sym = _sym_scale(a.sym, k)
            return Affine(a.coeff * k, a.const * k, sym) if sym is not None else None
        if op == "gep":
            ptr = self.analyze(ops[0])
            idx = self.analyze(ops[1])
            if ptr is None or idx is None:
                return None
            size = value.type.pointee.size_bytes()
            sym = _sym_scale(idx.sym, size)
            if sym is None:
                return None
            return Affine(
                ptr.coeff + idx.coeff * size,
                ptr.const + idx.const * size,
                _sym_add(ptr.sym, sym),
            )
        if op in ("sext", "zext", "trunc", "ptrtoint", "inttoptr", "bitcast"):
            # Width changes preserve affine form under the vectorizer's
            # standard no-wrap assumption for induction expressions.
            return self.analyze(ops[0])
        return None
