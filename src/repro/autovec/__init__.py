"""``repro.autovec`` — classical loop auto-vectorization, the baseline
the paper's Figures 4 and 5 normalize against ("LLVM Auto-vectorization",
loop + SLP pipeline; we implement the loop vectorizer, which dominates on
these workloads)."""

from .affine import Affine, AffineAnalysis
from .ifconvert import if_convert, speculatable
from .loopvec import (
    AutoVecConfig,
    LoopVecReport,
    auto_vectorize_function,
    auto_vectorize_module,
)

__all__ = [
    "Affine",
    "AffineAnalysis",
    "if_convert",
    "speculatable",
    "AutoVecConfig",
    "LoopVecReport",
    "auto_vectorize_function",
    "auto_vectorize_module",
]
