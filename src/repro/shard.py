"""``repro.shard`` — supervised multi-process sharded kernel execution.

Splits one kernel launch's gang range into ``k`` contiguous shards and
runs them on a pool of forked worker processes under a supervisor that
survives every realistic worker failure — crash, hang, corruption, lost
message — while producing **bitwise-identical** results (outputs *and*
aggregated :class:`~repro.backend.machine.ExecStats`) to the in-process
engine.

How a shard executes
--------------------

Workers do not receive a rewritten module.  Each worker runs the *whole*
kernel through the ordinary decoded engine with a
:class:`_ShardController` installed on the interpreter
(``Interpreter.shard``).  The controller intercepts every block dispatch
at depth 0:

* at the header of a matched gang loop it computes the loop's unit count
  ``U = ceil((bound - init) / step)`` and this shard's owned slice
  ``[U*s//k, U*(s+1)//k)`` (the last shard additionally owns the final
  exit evaluation of the header);
* **owned units** execute normally and are charged normally;
* **unowned units** are *skimmed*: the induction value is advanced
  directly in the environment and control re-enters the header, charging
  nothing — the header is therefore evaluated exactly once per owned
  unit, and ``U + 1`` times globally across the pool, matching the
  in-process engine;
* **serial code** (everything outside matched loops) executes in every
  shard — its memory writes are recomputed identically, which keeps each
  worker's image self-consistent — but is *charged* only by shard 0:
  shards > 0 snapshot the counters when leaving owned code and roll the
  serial charges back at the next owned unit.

Because every per-unit cost in the model is a dyadic rational
(0.5/1/2/8/9/20 and power-of-two bandwidth terms), float cycle sums are
exact and order-independent, so the supervisor's shard-order merge
reproduces the in-process totals bit-for-bit.

Supervision
-----------

The supervisor forks one worker per pool slot (the initial memory image
and module travel by copy-on-write, nothing is pickled), dispatches
shards in ascending order over duplex pipes, and enforces a per-shard
deadline (:func:`shard_timeout`).  Workers heartbeat from a daemon
thread.  A dead, hung, or corrupt worker is killed and reaped, its
staged writes are discarded, and the shard is re-dispatched with
exponential backoff to a healthy (possibly respawned) worker, at most
``max_attempts`` times.  A shard that exhausts its attempts — or a pool
that cannot keep any worker alive — *degrades*: the supervisor drains
the remaining shards in-process through the very same
:func:`_execute_shard` code path, so results stay bitwise identical and
the launch never errors.  A genuine kernel error inside a shard fails
the whole launch over to one authoritative full in-process rerun.

Shard results ship as validated deltas: the worker diffs its final
memory against the initial image, stages the changed byte ranges with a
CRC, and the supervisor applies validated deltas to the pristine image
in shard order — the same order the in-process engine wrote them.

Worker-site fault injection (``worker_crash`` / ``worker_hang`` /
``worker_corrupt`` / ``ipc_drop`` — see :mod:`repro.faultinject`) is
decided *supervisor-side* at dispatch and shipped with the job, so plan
state survives the worker it kills and a bounded plan lets the retry
succeed.

Limitations (documented contract):

* only loops matching the (relaxed) gang-loop shape are sharded; a
  launch with no such loop, a non-void kernel, atomics, the reference
  engine, or non-worker fault sites armed runs in-process and records a
  ``rejected`` shard report;
* serial code must not *read* memory written by gang iterations (the
  SPMD contract already forbids it; every benchsuite kernel complies);
* a launch that would trip the instruction budget in-process may not
  trip it sharded (each shard gets its own budget);
* the whole-kernel codegen engine (:mod:`repro.backend.codegen`) is
  disarmed under a shard controller: codegen only arms inside the
  replayable wrapper, which sharded runs bypass, so workers execute the
  decoded engine — the controller's per-dispatch interception has no
  seam in a compiled kernel body.  ``REPRO_CODEGEN`` is therefore a
  no-op for the sharded portion of a launch, by design.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import diskcache, faultinject
from .backend.machine import AVX512, ExecStats, Machine
from .diagnostics import ExecutionError, ReproError, emit_warning
from .envflags import env_flag
from .ir.cfg import DominatorTree, Loop, find_loops
from .ir.instructions import Instruction
from .ir.module import Function, Module
from .ir.types import IntType, VectorType
from .ir.values import Argument, Constant
from .vm.interp import Interpreter
from .vm.memory import Memory

__all__ = [
    "MAX_SHARDS",
    "DEFAULT_TIMEOUT",
    "ShardPlan",
    "ShardResult",
    "shard_count",
    "shard_timeout",
    "run_sharded",
]

#: Hard ceiling on the shard count (beyond this the skim overhead of the
#: serial replays dwarfs any parallelism).
MAX_SHARDS = 64

#: Default per-shard deadline in seconds.
DEFAULT_TIMEOUT = 30.0

#: Dispatch attempts per shard before it degrades to an in-process drain.
MAX_ATTEMPTS = 3

#: Base of the exponential re-dispatch backoff, seconds.
BACKOFF_BASE = 0.02

#: Adjacent dirty byte ranges closer than this are merged into one delta
#: segment (fewer, larger copies).
_MERGE_GAP = 64

_WORKER_SITE_ORDER = ("worker_crash", "worker_hang", "worker_corrupt", "ipc_drop")


# -- environment knobs ---------------------------------------------------------


def shard_count() -> int:
    """``REPRO_SHARDS`` (0 = off).  Unparsable or out-of-range values emit
    a structured :class:`~repro.diagnostics.ReproWarning` and fall back to
    a safe default — they never take the run down."""
    raw = os.environ.get("REPRO_SHARDS", "")
    if not raw:
        return 0
    try:
        count = int(raw)
    except ValueError:
        emit_warning(
            f"unparsable REPRO_SHARDS value {raw!r} (expected an integer); "
            "sharding stays off",
            stage="shard",
            detail={"variable": "REPRO_SHARDS", "value": raw},
        )
        return 0
    if count < 0:
        emit_warning(
            f"out-of-range REPRO_SHARDS={count} (expected 0..{MAX_SHARDS}); "
            "sharding stays off",
            stage="shard",
            detail={"variable": "REPRO_SHARDS", "value": raw},
        )
        return 0
    if count > MAX_SHARDS:
        emit_warning(
            f"out-of-range REPRO_SHARDS={count}; clamping to {MAX_SHARDS}",
            stage="shard",
            detail={"variable": "REPRO_SHARDS", "value": raw},
        )
        return MAX_SHARDS
    return count


def shard_timeout() -> float:
    """``REPRO_SHARD_TIMEOUT`` per-shard deadline in seconds (default
    ``DEFAULT_TIMEOUT``); unparsable or non-positive values emit a
    :class:`~repro.diagnostics.ReproWarning` and use the default."""
    raw = os.environ.get("REPRO_SHARD_TIMEOUT", "")
    if not raw:
        return DEFAULT_TIMEOUT
    try:
        timeout = float(raw)
    except ValueError:
        emit_warning(
            f"unparsable REPRO_SHARD_TIMEOUT value {raw!r} (expected seconds); "
            f"using {DEFAULT_TIMEOUT}",
            stage="shard",
            detail={"variable": "REPRO_SHARD_TIMEOUT", "value": raw},
        )
        return DEFAULT_TIMEOUT
    if not math.isfinite(timeout) or timeout <= 0:
        emit_warning(
            f"out-of-range REPRO_SHARD_TIMEOUT={raw} (expected > 0 seconds); "
            f"using {DEFAULT_TIMEOUT}",
            stage="shard",
            detail={"variable": "REPRO_SHARD_TIMEOUT", "value": raw},
        )
        return DEFAULT_TIMEOUT
    return timeout


# -- gang-loop matching --------------------------------------------------------


class _LoopDesc:
    """One shardable gang loop: the values the controller needs at run time."""

    __slots__ = (
        "header", "phi", "icmp", "inc", "step", "mask",
        "init", "bound", "latch", "exit_block", "members", "resolvers",
    )

    def __init__(self, header, phi, icmp, inc, step, mask, init, bound,
                 latch, exit_block, members):
        self.header = header
        self.phi = phi
        self.icmp = icmp
        self.inc = inc
        self.step = step
        self.mask = mask
        self.init = init
        self.bound = bound
        self.latch = latch
        self.exit_block = exit_block
        self.members = members
        self.resolvers = None  # built lazily from the first interpreter


def _loop_invariant(value, loop: Loop, dt: DominatorTree, entry_pred) -> bool:
    """True when ``value`` is resolvable at the loop's entry edge: a
    constant, an argument, or an instruction defined outside the loop in a
    block dominating the entry predecessor."""
    if isinstance(value, (Constant, Argument)):
        return True
    if isinstance(value, Instruction):
        parent = value.parent
        return (
            parent is not None
            and parent not in loop.blocks
            and dt.dominates(parent, entry_pred)
        )
    return False


def _match_shard_loop(loop: Loop, dt: DominatorTree) -> Optional[_LoopDesc]:
    """The gang-loop shape :mod:`repro.backend.batch` matches, relaxed to
    any loop-invariant init/bound (batching requires ``init == 0``), and
    tightened to single-exit so skimming cannot skip a break."""
    header = loop.header
    if set(loop.exiting_blocks()) != {header}:
        return None
    latches = loop.latches
    if len(latches) != 1:
        return None
    latch = latches[0]
    phis = header.phis()
    if len(phis) != 1:
        return None
    phi = phis[0]
    if isinstance(phi.type, VectorType) or not isinstance(phi.type, IntType):
        return None
    rest = header.non_phi_instructions()
    if len(rest) != 2:
        return None
    cmp_, term = rest
    if (
        cmp_.opcode != "icmp"
        or cmp_.attrs.get("pred") != "ult"
        or cmp_.operands[0] is not phi
    ):
        return None
    if term.opcode != "condbr" or term.operands[0] is not cmp_:
        return None
    if term.operands[1] not in loop.blocks or term.operands[2] in loop.blocks:
        return None
    exit_block = term.operands[2]
    entry_preds = [b for b in header.predecessors if b not in loop.blocks]
    if len(entry_preds) != 1:
        return None
    entry_pred = entry_preds[0]
    bound = cmp_.operands[1]
    if not _loop_invariant(bound, loop, dt, entry_pred):
        return None
    try:
        inc = phi.phi_value_for(latch)
    except KeyError:
        return None
    if not (
        isinstance(inc, Instruction)
        and inc.opcode == "add"
        and inc.parent in loop.blocks
        and inc.operands[0] is phi
    ):
        return None
    step = inc.operands[1]
    if not isinstance(step, Constant) or isinstance(step.type, VectorType):
        return None
    step_value = int(step.as_signed())
    if step_value < 2:  # gang loops stride by the gang size; plain
        return None     # step-1 loops carry no independence guarantee
    try:
        init = phi.phi_value_for(entry_pred)
    except KeyError:
        return None
    if not _loop_invariant(init, loop, dt, entry_pred):
        return None
    mask = (1 << phi.type.bits) - 1
    return _LoopDesc(
        header, phi, cmp_, inc, step_value, mask, init, bound,
        latch, exit_block, frozenset(loop.blocks),
    )


def _find_shard_loops(function: Function) -> Dict[object, _LoopDesc]:
    """Top-level matched gang loops of ``function``, keyed by header.

    Only loops with no ancestor are candidates: a gang loop nested in an
    outer (serial) loop re-enters — each entry may read memory that the
    *previous* entry's other shards wrote (a stencil's timestep loop),
    which a worker that skimmed those units never computed.  Such kernels
    reject and run in-process rather than risk a wrong answer.
    """
    dt = DominatorTree(function)
    descs: Dict[object, _LoopDesc] = {}
    for loop in find_loops(function, dt):  # sorted outer-first by depth
        if loop.parent is not None:
            continue
        desc = _match_shard_loop(loop, dt)
        if desc is not None:
            descs[desc.header] = desc
    return descs


class ShardPlan:
    """Per-module shard analysis: matched gang loops per function (lazy)
    plus launch legality for one kernel."""

    def __init__(self, module: Module, function_name: str):
        self.module = module
        self.function_name = function_name
        self._loops: Dict[Function, Dict[object, _LoopDesc]] = {}

    def loops_for(self, function: Function) -> Dict[object, _LoopDesc]:
        cached = self._loops.get(function)
        if cached is None:
            cached = self._loops[function] = _find_shard_loops(function)
        return cached

    def rejection_reasons(self) -> List[str]:
        """Why this launch cannot shard (empty = legal)."""
        reasons: List[str] = []
        kernel = self.module.functions.get(self.function_name)
        if kernel is None:
            return [f"no function @{self.function_name} in the module"]
        for fn in self.module.functions.values():
            for block in fn.blocks:
                for instr in block.instructions:
                    if instr.opcode == "atomicrmw":
                        reasons.append(
                            "atomics require a serialized cross-gang order"
                        )
                        break
                else:
                    continue
                break
            else:
                continue
            break
        for block in kernel.blocks:
            term = block.terminator
            if term is not None and term.opcode == "ret" and term.operands:
                reasons.append("kernel returns a value")
                break
        if not self.loops_for(kernel):
            reasons.append("no shardable gang loops in the kernel")
        return reasons


# -- the per-shard controller --------------------------------------------------


class _ShardRun:
    """What ``Interpreter.shard`` holds: which slice of the launch this
    interpreter executes."""

    __slots__ = ("plan", "index", "count")

    def __init__(self, plan: ShardPlan, index: int, count: int):
        self.plan = plan
        self.index = index
        self.count = count

    def controller(self, function: Function, interp: Interpreter):
        return _ShardController(
            self.plan.loops_for(function), self.index, self.count, interp
        )


class _ShardController:
    """Intercepts block dispatch at depth 0 (see module docstring).

    ``keep`` tracks whether counter charges since the last snapshot belong
    to this shard (owned gang units) or are serial replays to roll back.
    Shard 0 keeps everything and never snapshots.
    """

    __slots__ = (
        "descs", "index", "count", "interp",
        "state", "cur_members", "keep", "snap",
    )

    def __init__(self, descs, index, count, interp):
        self.descs = descs
        self.index = index
        self.count = count
        self.interp = interp
        #: header -> (init, bound, lo, hi, units) for the current entry
        self.state: Dict[object, Tuple[int, int, int, int, int]] = {}
        self.cur_members = None
        self.keep = True
        self.snap = None
        if index:
            # Charges start as serial (the kernel prologue) — snapshot the
            # zeroed counters so they can be rolled back.
            self._snapshot()
            self.keep = False

    def _snapshot(self) -> None:
        interp = self.interp
        stats = interp.stats
        self.snap = (
            stats.cycles, stats.instructions, dict(stats.counts),
            dict(interp.func_cycles), dict(interp.func_calls),
            dict(interp.edge_cycles), dict(interp.edge_calls),
            dict(interp.fuse_hits), interp._child_cycles,
        )

    def _restore(self) -> None:
        interp = self.interp
        stats = interp.stats
        snap = self.snap
        stats.cycles, stats.instructions = snap[0], snap[1]
        stats.counts.clear()
        stats.counts.update(snap[2])
        for live, saved in (
            (interp.func_cycles, snap[3]), (interp.func_calls, snap[4]),
            (interp.edge_cycles, snap[5]), (interp.edge_calls, snap[6]),
            (interp.fuse_hits, snap[7]),
        ):
            live.clear()
            live.update(saved)
        interp._child_cycles = snap[8]

    def step(self, block, prev, env):
        """Called at the top of the dispatch loop for every block.

        Returns ``None`` to execute ``block`` normally, or ``(prev, block)``
        to jump instead (nothing charged).
        """
        desc = self.descs.get(block)
        if desc is None:
            # Serial (or inner-body) block.  Transitioning out of owned
            # loop code on shards > 0 snapshots, so the serial charges
            # that follow can be rolled back at the next owned unit.
            if self.index and self.keep and (
                self.cur_members is None or block not in self.cur_members
            ):
                self._snapshot()
                self.keep = False
                self.cur_members = None
            return None
        st = self.state.get(block)
        if st is None or prev is not desc.latch:
            # (Re-)entering the loop: resolve init/bound for this entry.
            resolvers = desc.resolvers
            if resolvers is None:
                interp = self.interp
                resolvers = desc.resolvers = (
                    interp._resolver(desc.init), interp._resolver(desc.bound)
                )
            init = resolvers[0](env)
            bound = resolvers[1](env)
            units = (
                (bound - init + desc.step - 1) // desc.step
                if bound > init else 0
            )
            count = self.count
            lo = units * self.index // count
            hi = (
                units * (self.index + 1) // count
                if self.index < count - 1
                else units + 1  # the last shard owns the exit evaluation
            )
            st = self.state[block] = (init, bound, lo, hi, units)
            base = init
        else:
            base = env[desc.inc]
        init, bound, lo, hi, units = st
        if base < bound:
            unit = (base - init) // desc.step
            if lo <= unit < hi:
                # Owned unit: roll back pending serial charges, then let
                # the header (and body) execute and charge normally.
                if self.index and not self.keep:
                    self._restore()
                    self.keep = True
                self.cur_members = desc.members
                return None
            # Unowned unit: skim.  Advance the induction value exactly as
            # the (add phi, step) would and re-enter the header, charging
            # nothing.
            env[desc.inc] = (base + desc.step) & desc.mask
            return (desc.latch, block)
        # base >= bound: the final exit evaluation of the header.
        if lo <= units < hi:
            # Owned (last shard): execute the header normally — it charges
            # the phi + icmp + condbr of the exit test, as in-process.
            if self.index and not self.keep:
                self._restore()
                self.keep = True
            self.cur_members = desc.members
            return None
        # Unowned exit: materialize the values the exit edge carries and
        # jump straight to the exit block, charging nothing.
        env[desc.phi] = base
        env[desc.icmp] = 0
        return (block, desc.exit_block)

    def finish(self) -> None:
        """Called once at function return: drop trailing serial charges."""
        if self.index and not self.keep:
            self._restore()
            self.keep = True


# -- shard execution (shared by workers and the local drain) -------------------


def _memory_delta(initial: np.ndarray, final: np.ndarray):
    """Dirty byte ranges of ``final`` vs ``initial`` plus a CRC over the
    (ranges, bytes) staging payload."""
    dirty = np.flatnonzero(initial != final)
    if dirty.size == 0:
        return [], b"", zlib.crc32(b"")
    breaks = np.flatnonzero(np.diff(dirty) > _MERGE_GAP)
    starts = dirty[np.concatenate(([0], breaks + 1))]
    ends = dirty[np.concatenate((breaks, [dirty.size - 1]))] + 1
    ranges = [(int(s), int(e)) for s, e in zip(starts, ends)]
    blob = b"".join(final[s:e].tobytes() for s, e in ranges)
    head = np.asarray(ranges, dtype=np.int64).tobytes()
    return ranges, blob, zlib.crc32(blob, zlib.crc32(head))


def _delta_crc(ranges, blob) -> int:
    head = np.asarray(ranges, dtype=np.int64).tobytes() if ranges else b""
    return zlib.crc32(blob, zlib.crc32(head)) if ranges else zlib.crc32(b"")


def _execute_shard(interp: Interpreter, plan: ShardPlan, index: int,
                   count: int, function_name: str, args,
                   initial: np.ndarray) -> Dict[str, object]:
    """Run one shard on ``interp`` (memory already reset to ``initial``)
    and package counters + staged memory delta.

    Every shard executes the kernel once, so the root call is decremented
    here and re-added exactly once by the supervisor's merge.
    """
    interp.reset_stats()
    interp.shard = _ShardRun(plan, index, count)
    try:
        interp.run(function_name, *args)
    finally:
        interp.shard = None
    stats = interp.stats
    ranges, blob, crc = _memory_delta(initial, interp.memory.data)
    func_calls = dict(interp.func_calls)
    func_calls[function_name] = func_calls.get(function_name, 1) - 1
    edge_calls = dict(interp.edge_calls)
    root = ("<root>", function_name)
    edge_calls[root] = edge_calls.get(root, 1) - 1
    return {
        "shard": index,
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "counts": dict(stats.counts),
        "func_cycles": dict(interp.func_cycles),
        "func_calls": func_calls,
        "edge_cycles": dict(interp.edge_cycles),
        "edge_calls": edge_calls,
        "fuse_hits": dict(interp.fuse_hits),
        "fuse_static": dict(interp.fuse_static),
        "ranges": ranges,
        "blob": blob,
        "crc": crc,
    }


# -- the worker process --------------------------------------------------------


def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives pickling, else a sanitized stand-in that
    keeps the type name and message."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ExecutionError(
            f"{type(exc).__name__}: {exc}",
            stage="vm",
            detail={"unpicklable_type": type(exc).__name__},
        )


def _worker_main(conn, spec: Dict[str, object]) -> None:
    """Entry point of one forked shard worker.

    ``spec`` travels by fork (copy-on-write), never pickled.  The worker
    heartbeats from a daemon thread, executes one job at a time, and obeys
    the fault directive shipped with each job.
    """
    import threading

    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(msg) -> bool:
        with send_lock:
            try:
                conn.send(msg)
                return True
            except (OSError, ValueError):
                return False

    def _heartbeat() -> None:
        while not stop.wait(spec["hb"]):
            _send(("hb", os.getpid()))

    threading.Thread(target=_heartbeat, daemon=True).start()

    module = None
    recipe = spec.get("recipe")
    if recipe is not None:
        # Warm start: recompile through the driver so the disk cache and
        # pinned autotune decisions are exercised; any failure falls back
        # to the fork-inherited module.
        try:
            if "pickled" in recipe:
                module = diskcache.loads_module(recipe["pickled"])
            else:
                from .driver import compile_parsimony

                module = compile_parsimony(
                    recipe["source"],
                    module_name=recipe.get("module_name", "parsimony"),
                )
        except Exception:
            module = None
    if module is None:
        module = spec["module"]

    initial: np.ndarray = spec["initial"]
    memory = Memory(size=initial.size)
    interp = Interpreter(
        module,
        machine=spec["machine"],
        cost_model=spec["cost_model"],
        memory=memory,
        predecode=True,
        superinstructions=spec["superinstructions"],
    )
    plan = ShardPlan(module, spec["function"])
    args = spec["args"]
    function_name = spec["function"]
    brk = spec["brk"]

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "quit":
                break
            _, index, count, directive = msg
            memory.data[:] = initial
            memory._brk = brk
            try:
                payload = _execute_shard(
                    interp, plan, index, count, function_name, args, initial
                )
            except BaseException as exc:  # ship kernel errors, never die
                _send(("err", index, _picklable_error(exc)))
                continue
            if directive == "worker_crash":
                os._exit(137)  # computed but never shipped: SIGKILL stand-in
            if directive == "worker_corrupt":
                # Flip a staged byte *after* the CRC was computed, so the
                # supervisor must catch the mismatch.
                if payload["blob"]:
                    blob = bytearray(payload["blob"])
                    blob[0] ^= 0xFF
                    payload["blob"] = bytes(blob)
                else:
                    payload["crc"] ^= 1
            if directive == "worker_hang":
                time.sleep(3600.0)  # the supervisor's deadline reaps us
            if directive == "ipc_drop":
                continue  # computed but the message is "lost"
            _send(("ok", index, payload))
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


# -- results -------------------------------------------------------------------


class ShardResult:
    """What :func:`run_sharded` returns — duck-compatible with the slice of
    :class:`~repro.vm.interp.Interpreter` the benchsuite runner reads
    (``stats`` / ``hotspots()`` / ``fusion_report()`` / ``batch_replays``)."""

    def __init__(self, stats: ExecStats, func_cycles, func_calls,
                 edge_cycles, edge_calls, fuse_hits, fuse_static,
                 superinstructions: bool, report: Dict[str, object],
                 returned=None, batch_replays: int = 0):
        self.stats = stats
        self.func_cycles = func_cycles
        self.func_calls = func_calls
        self.edge_cycles = edge_cycles
        self.edge_calls = edge_calls
        self.fuse_hits = fuse_hits
        self.fuse_static = fuse_static
        self.superinstructions = superinstructions
        self.report = report
        self.returned = returned
        self.batch_replays = batch_replays

    def hotspots(self) -> List[Dict[str, object]]:
        incoming: Dict[str, Dict[str, Dict[str, object]]] = {}
        for (caller, callee), cycles in self.edge_cycles.items():
            incoming.setdefault(callee, {})[caller] = {
                "inclusive_cycles": cycles,
                "calls": self.edge_calls.get((caller, callee), 0),
            }
        entries: List[Dict[str, object]] = [
            {
                "function": name,
                "exclusive_cycles": cycles,
                "calls": self.func_calls.get(name, 0),
                "callers": incoming.get(name, {}),
            }
            for name, cycles in sorted(
                self.func_cycles.items(), key=lambda kv: -kv[1]
            )
        ]
        if any(self.fuse_hits.values()):
            entries.append(
                {
                    "function": "(vm.fuse)",
                    "exclusive_cycles": 0.0,
                    "calls": 0,
                    "callers": {},
                    "fusion": self.fusion_report(),
                }
            )
        return entries

    def fusion_report(self) -> Dict[str, object]:
        return {
            "superinstructions": self.superinstructions,
            "sites": dict(self.fuse_static),
            "hits": dict(self.fuse_hits),
        }


class _KernelFailed(Exception):
    """Internal: a worker reported a genuine kernel error for a shard."""

    def __init__(self, shard_index: int, error: BaseException):
        super().__init__(f"shard {shard_index} kernel error")
        self.shard_index = shard_index
        self.error = error


# -- the supervisor ------------------------------------------------------------


class _WorkerSlot:
    __slots__ = ("proc", "conn", "shard", "deadline", "last_hb")

    def __init__(self, proc, conn, now: float):
        self.proc = proc
        self.conn = conn
        self.shard: Optional[int] = None
        self.deadline = 0.0
        self.last_hb = now


class _Supervisor:
    def __init__(self, module, function_name, args, machine, memory, count,
                 timeout, workers, superinstructions, cost_model, label,
                 max_attempts, recipe, plan):
        self.module = module
        self.function_name = function_name
        self.args = args
        self.machine = machine
        self.memory = memory
        self.count = count
        self.timeout = timeout
        self.superinstructions = superinstructions
        self.cost_model = cost_model
        self.label = label
        self.max_attempts = max_attempts
        self.recipe = recipe
        self.plan = plan
        self.workers = workers
        self.initial = memory.data.copy()
        self.brk = memory._brk
        self.hb = min(1.0, max(timeout / 4.0, 0.05))
        self.retries = 0
        self.degraded = 0
        self.results: Dict[int, Dict[str, object]] = {}
        self.attempts = [0] * count
        self.slots: Dict[int, Optional[_WorkerSlot]] = {}
        self.respawn_budget = 2 * count + workers
        self._local: Optional[Interpreter] = None
        self.events: List[Dict[str, object]] = []

    # -- worker pool ----------------------------------------------------------

    def _spawn(self, slot_id: int) -> Optional[_WorkerSlot]:
        if self.respawn_budget <= 0:
            return None
        self.respawn_budget -= 1
        spec = {
            "module": self.module,
            "recipe": self.recipe,
            "function": self.function_name,
            "args": self.args,
            "machine": self.machine,
            "cost_model": self.cost_model,
            "superinstructions": self.superinstructions,
            "initial": self.initial,
            "brk": self.brk,
            "hb": self.hb,
        }
        try:
            parent, child = self.ctx.Pipe()
            proc = self.ctx.Process(
                target=_worker_main,
                args=(child, spec),
                daemon=True,
                name=f"repro-shard-{slot_id}",
            )
            proc.start()
            child.close()
        except (OSError, ValueError):
            return None
        return _WorkerSlot(proc, parent, time.monotonic())

    def _reap(self, slot: _WorkerSlot) -> None:
        try:
            slot.conn.close()
        except OSError:
            pass
        proc = slot.proc
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
            else:
                proc.join(0.1)
        except (OSError, ValueError, AssertionError):
            pass

    def _shutdown(self) -> None:
        for slot in self.slots.values():
            if slot is None:
                continue
            try:
                slot.conn.send(("quit",))
            except (OSError, ValueError):
                pass
        for slot in self.slots.values():
            if slot is not None:
                self._reap(slot)
        self.slots = {}

    # -- failure handling -----------------------------------------------------

    def _shard_failed(self, index: int, reason: str, pending: List[int],
                      not_before: Dict[int, float]) -> None:
        """Retry with backoff, or degrade the shard to a local drain."""
        self.events.append({"shard": index, "event": reason})
        if self.attempts[index] < self.max_attempts:
            self.retries += 1
            pending.append(index)
            pending.sort()
            not_before[index] = (
                time.monotonic() + BACKOFF_BASE * (2 ** (self.attempts[index] - 1))
            )
            return
        self._drain_local(index, f"{reason}; attempts exhausted")

    def _worker_failed(self, slot_id: int, reason: str, pending: List[int],
                       not_before: Dict[int, float]) -> None:
        slot = self.slots.get(slot_id)
        if slot is None:
            return
        in_flight = slot.shard
        self._reap(slot)
        self.slots[slot_id] = self._spawn(slot_id)
        if in_flight is not None and in_flight not in self.results:
            self._shard_failed(in_flight, reason, pending, not_before)

    def _drain_local(self, index: int, reason: str) -> None:
        """Degradation: run the shard in-process through the same
        :func:`_execute_shard` path (bitwise identical by construction)."""
        self.degraded += 1
        self.events.append({"shard": index, "event": f"degraded: {reason}"})
        interp = self._local
        if interp is None:
            interp = self._local = Interpreter(
                self.module,
                machine=self.machine,
                cost_model=self.cost_model,
                memory=Memory(size=self.initial.size),
                predecode=True,
                superinstructions=self.superinstructions,
            )
        interp.memory.data[:] = self.initial
        interp.memory._brk = self.brk
        try:
            self.results[index] = _execute_shard(
                interp, self.plan, index, self.count,
                self.function_name, self.args, self.initial,
            )
        except BaseException as exc:
            raise _KernelFailed(index, exc)

    # -- the event loop -------------------------------------------------------

    def _handle_message(self, slot: _WorkerSlot, msg, pending: List[int],
                        not_before: Dict[int, float]) -> None:
        kind = msg[0]
        if kind == "hb":
            slot.last_hb = time.monotonic()
            return
        if kind == "err":
            _, index, error = msg
            if slot.shard == index:
                slot.shard = None
            raise _KernelFailed(index, error)
        if kind != "ok":
            return
        _, index, payload = msg
        if slot.shard == index:
            slot.shard = None
        if index in self.results:
            return  # duplicate (e.g. a slow shard already drained locally)
        if _delta_crc(payload["ranges"], payload["blob"]) != payload["crc"]:
            # Corrupted staging slice: discard it and retry the shard.
            self._shard_failed(index, "staged delta failed CRC validation",
                              pending, not_before)
            return
        self.results[index] = payload

    def _dispatch(self, pending: List[int],
                  not_before: Dict[int, float]) -> None:
        now = time.monotonic()
        for slot_id, slot in self.slots.items():
            if not pending:
                return
            if slot is None or slot.shard is not None:
                continue
            ready = next(
                (i for i in pending if not_before.get(i, 0.0) <= now), None
            )
            if ready is None:
                return
            directive = None
            for site in _WORKER_SITE_ORDER:
                if faultinject.should_fire(site, f"{self.label}:{ready}"):
                    directive = site
                    break
            pending.remove(ready)
            self.attempts[ready] += 1
            try:
                slot.conn.send(("job", ready, self.count, directive))
            except (OSError, ValueError):
                pending.append(ready)
                pending.sort()
                self.attempts[ready] -= 1
                self._worker_failed(slot_id, "dispatch pipe failed",
                                    pending, not_before)
                continue
            slot.shard = ready
            slot.deadline = time.monotonic() + self.timeout

    def supervise(self) -> None:
        from multiprocessing import connection as mpc

        pending = list(range(self.count))
        not_before: Dict[int, float] = {}
        for slot_id in range(self.workers):
            self.slots[slot_id] = self._spawn(slot_id)

        try:
            while len(self.results) < self.count:
                live = {
                    sid: s for sid, s in self.slots.items() if s is not None
                }
                if not live:
                    # Pool lost below quorum and respawn failed: drain
                    # every unresolved shard in-process, in order.
                    for index in range(self.count):
                        if index not in self.results:
                            self._drain_local(index, "no live workers")
                    return
                self._dispatch(pending, not_before)

                now = time.monotonic()
                wakeups = [s.deadline for s in live.values()
                           if s.shard is not None]
                wakeups += [t for i, t in not_before.items() if i in pending]
                wait_for = max(
                    0.0, min((t - now for t in wakeups), default=0.05)
                )
                conns = {s.conn: sid for sid, s in live.items()}
                for conn in mpc.wait(list(conns), timeout=min(wait_for, 0.25)):
                    slot_id = conns[conn]
                    slot = self.slots.get(slot_id)
                    if slot is None or slot.conn is not conn:
                        continue
                    try:
                        while True:
                            msg = conn.recv()
                            self._handle_message(slot, msg, pending, not_before)
                            if not conn.poll():
                                break
                    except (EOFError, OSError):
                        self._worker_failed(slot_id, "worker died mid-shard",
                                            pending, not_before)

                now = time.monotonic()
                for slot_id, slot in list(self.slots.items()):
                    if slot is None:
                        if pending:
                            self.slots[slot_id] = self._spawn(slot_id)
                        continue
                    if slot.shard is not None and now > slot.deadline:
                        self._worker_failed(
                            slot_id, "per-shard deadline exceeded (hang)",
                            pending, not_before,
                        )
                    elif not slot.proc.is_alive() and (
                        now - slot.last_hb > 2 * self.hb
                    ):
                        self._worker_failed(
                            slot_id, "worker process exited",
                            pending, not_before,
                        )
        finally:
            self._shutdown()

    # -- merging --------------------------------------------------------------

    def merge(self) -> ShardResult:
        stats = ExecStats()
        func_cycles: Dict[str, float] = {}
        func_calls: Dict[str, int] = {}
        edge_cycles: Dict[Tuple[str, str], float] = {}
        edge_calls: Dict[Tuple[str, str], int] = {}
        fuse_hits: Dict[str, int] = {}
        fuse_static: Dict[str, int] = {}
        for index in range(self.count):
            payload = self.results[index]
            stats.cycles += payload["cycles"]
            stats.instructions += payload["instructions"]
            for key, n in payload["counts"].items():
                stats.counts[key] = stats.counts.get(key, 0) + n
            for live, field in (
                (func_cycles, "func_cycles"), (edge_cycles, "edge_cycles"),
            ):
                for key, v in payload[field].items():
                    live[key] = live.get(key, 0.0) + v
            for live, field in (
                (func_calls, "func_calls"), (edge_calls, "edge_calls"),
                (fuse_hits, "fuse_hits"),
            ):
                for key, v in payload[field].items():
                    live[key] = live.get(key, 0) + v
            for key, v in payload["fuse_static"].items():
                # Decode artifact, not a run counter: the in-process value
                # is the decoded superset, which the busiest shard decodes.
                fuse_static[key] = max(fuse_static.get(key, 0), v)
        # The launch makes exactly one root call (each shard's was
        # decremented in its payload).
        func_calls[self.function_name] = (
            func_calls.get(self.function_name, 0) + 1
        )
        root = ("<root>", self.function_name)
        edge_calls[root] = edge_calls.get(root, 0) + 1
        # Drop zero-valued entries the decrement may have left for shards
        # that never charged the kernel (cannot happen today, but keep the
        # merged dicts shaped like the in-process ones).
        func_calls = {k: v for k, v in func_calls.items() if v}
        edge_calls = {k: v for k, v in edge_calls.items() if v}

        # Apply validated deltas to the pristine image in shard order —
        # the order the in-process engine wrote them.
        data = self.memory.data
        data[:] = self.initial
        for index in range(self.count):
            payload = self.results[index]
            blob = payload["blob"]
            offset = 0
            for start, end in payload["ranges"]:
                n = end - start
                data[start:end] = np.frombuffer(
                    blob, dtype=np.uint8, count=n, offset=offset
                )
                offset += n
        self.memory._brk = self.brk

        report = self.report("sharded")
        return ShardResult(
            stats, func_cycles, func_calls, edge_cycles, edge_calls,
            fuse_hits, fuse_static, self._superinstructions_flag(),
            report,
        )

    def _superinstructions_flag(self) -> bool:
        if self.superinstructions is not None:
            return bool(self.superinstructions)
        return not env_flag("REPRO_NO_FUSE")

    def report(self, mode: str, **extra) -> Dict[str, object]:
        rep: Dict[str, object] = {
            "mode": mode,
            "shards": self.count,
            "workers": self.workers,
            "retries": self.retries,
            "degraded": self.degraded,
        }
        if self.events:
            rep["events"] = list(self.events)
        rep.update(extra)
        return rep


# -- the public entry point ----------------------------------------------------


def _run_inprocess(module, function_name, args, machine, memory,
                   superinstructions, cost_model, predecode,
                   report) -> ShardResult:
    interp = Interpreter(
        module,
        machine=machine,
        cost_model=cost_model,
        memory=memory,
        predecode=predecode,
        superinstructions=superinstructions,
    )
    interp.reset_stats()
    returned = interp.run(function_name, *args)
    return ShardResult(
        interp.stats,
        dict(interp.func_cycles), dict(interp.func_calls),
        dict(interp.edge_cycles), dict(interp.edge_calls),
        dict(interp.fuse_hits), dict(interp.fuse_static),
        interp.superinstructions, report,
        returned=returned, batch_replays=interp.batch_replays,
    )


def run_sharded(module: Module, function_name: str = "kernel", args=(), *,
                machine: Machine = AVX512, memory: Optional[Memory] = None,
                shards: Optional[int] = None, timeout: Optional[float] = None,
                workers: Optional[int] = None, predecode: bool = True,
                superinstructions=None, cost_model=None,
                label: Optional[str] = None,
                max_attempts: int = MAX_ATTEMPTS,
                recipe: Optional[Dict[str, object]] = None) -> ShardResult:
    """Execute one kernel launch sharded across worker processes.

    ``memory`` must already hold the launch's input arrays (the supervisor
    snapshots it as the initial image and leaves the merged final image in
    it).  Illegal launches run in-process with a ``rejected`` report;
    failures degrade per the module docstring; the result's ``report``
    dict feeds ``telemetry.record_vm_run(shard=...)``.
    """
    count = shards if shards is not None else shard_count()
    timeout = timeout if timeout is not None else shard_timeout()
    memory = memory if memory is not None else Memory()
    label = label or function_name

    reasons: List[str] = []
    if count < 2:
        reasons.append(f"shards={count} (sharding needs at least 2)")
    if not predecode:
        reasons.append("reference engine (predecode=False) is not sharded")
    non_worker = sorted(
        {s for s in faultinject.armed_sites() if s not in faultinject.WORKER_SITES}
    )
    if non_worker:
        reasons.append(f"non-worker fault sites armed: {non_worker}")
    plan = ShardPlan(module, function_name)
    if not reasons:
        reasons.extend(plan.rejection_reasons())
    if reasons:
        report = {
            "mode": "rejected",
            "shards": count,
            "reasons": reasons,
            "retries": 0,
            "degraded": 0,
        }
        return _run_inprocess(
            module, function_name, args, machine, memory,
            superinstructions, cost_model, predecode, report,
        )

    import multiprocessing as mp

    if workers is None:
        workers = max(2, min(count, (os.cpu_count() or 2), 8))
    sup = _Supervisor(
        module, function_name, args, machine, memory, count, timeout,
        workers, superinstructions, cost_model, label, max_attempts,
        recipe, plan,
    )
    try:
        sup.ctx = mp.get_context("fork")
    except ValueError:
        # No fork on this platform: degrade the whole launch in-process.
        sup.degraded = count
        report = sup.report("degraded", reason="fork start method unavailable")
        return _run_inprocess(
            module, function_name, args, machine, memory,
            superinstructions, cost_model, predecode, report,
        )

    try:
        sup.supervise()
    except _KernelFailed as failure:
        # A genuine kernel error inside a shard: one authoritative full
        # in-process rerun (it reproduces the error — with replay
        # semantics on batched modules — or the result).
        sup._shutdown()
        sup.degraded += 1
        memory.data[:] = sup.initial
        memory._brk = sup.brk
        report = sup.report(
            "degraded", reason="kernel error in shard",
            failed_shard=failure.shard_index,
        )
        try:
            return _run_inprocess(
                module, function_name, args, machine, memory,
                superinstructions, cost_model, predecode, report,
            )
        except ReproError as err:
            if isinstance(err.diagnostic.detail, dict):
                err.diagnostic.detail.setdefault(
                    "shard", failure.shard_index
                )
            raise
    return sup.merge()
