"""Shared boolean environment-flag parsing with structured diagnostics.

Engine escape hatches (``REPRO_NO_FUSE``, ``REPRO_NO_CODEGEN``,
``REPRO_CODEGEN``, ...) are booleans, but they historically parsed with
``value in ("1", "true")`` — which silently *ignores* a misspelled value
like ``REPRO_NO_FUSE=yes`` and runs the engine the user asked to turn
off.  An unparsable value is a misconfiguration, not a silent request
for the default: it falls back to the default but emits a structured
:class:`~repro.diagnostics.ReproWarning` saying so, matching the
``REPRO_BATCH``/``REPRO_SHARDS`` precedent.
"""

from __future__ import annotations

import os

from .diagnostics import emit_warning

__all__ = ["env_flag"]

_TRUE = frozenset(("1", "true", "yes", "on"))
_FALSE = frozenset(("0", "false", "no", "off", ""))


def env_flag(name: str, default: bool = False) -> bool:
    """Parse boolean env var ``name``; warn (and keep ``default``) on garbage.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` (case-insensitive);
    unset or empty means ``default``.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUE:
        return True
    if value in _FALSE:
        return False
    emit_warning(
        f"unparsable {name}={raw!r} (expected 1/0/true/false/yes/no/on/off);"
        f" keeping the default",
        stage="driver",
        pass_name="envflags",
        detail={"variable": name, "value": raw, "default": default},
    )
    return default
