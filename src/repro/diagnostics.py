"""``repro.diagnostics`` — structured errors for the whole pipeline.

Every error the compiler or VM raises on purpose carries a
:class:`Diagnostic`: a severity, the pipeline *stage* that produced it
(``frontend`` / ``passes`` / ``vectorizer`` / ``verifier`` / ``smt`` /
``vm``), and — where known — the pass, function, block, and instruction
it refers to.  This is what lets the driver degrade gracefully (the
Parsimony pass must never take the build down, §4.2) and report *where*
and *why* precisely instead of surfacing a bare assertion.

Two exception roots span the pipeline:

* :class:`CompileError` — anything raised while producing IR (front-end,
  passes, vectorizer, verifier, SMT layer);
* :class:`ExecutionError` — anything raised while running IR (VM traps,
  memory faults).

Concrete errors (``VerificationError``, ``VectorizeError``, ``SemaError``,
``MemoryError_``, ...) keep their historical names and builtin bases
(``SyntaxError``, ``TypeError``) but are rebased onto these roots, so
``except CompileError`` catches every deliberate compile-time failure
while old call sites and tests keep working unchanged.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "ReproError",
    "ReproWarning",
    "CompileError",
    "ExecutionError",
    "attach_location",
    "emit_warning",
]


class Severity(enum.Enum):
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"
    FATAL = "fatal"

    def __str__(self) -> str:  # pragma: no cover
        return self.value


@dataclass
class Diagnostic:
    """One structured finding: what went wrong, where in the pipeline."""

    message: str
    severity: Severity = Severity.ERROR
    #: pipeline stage: frontend | passes | vectorizer | verifier | smt | vm |
    #: scalarize | faultinject (empty when the raiser didn't say).
    stage: str = ""
    pass_name: str = ""
    function: str = ""
    block: str = ""
    instruction: str = ""
    #: free-form structured payload (rule names, fault sites, ...).
    detail: Dict[str, object] = field(default_factory=dict)

    def location(self) -> str:
        """Human-readable provenance suffix, empty when nothing is known."""
        parts = []
        if self.stage:
            parts.append(f"stage={self.stage}")
        if self.pass_name:
            parts.append(f"pass={self.pass_name}")
        if self.function:
            parts.append(f"function=@{self.function}")
        if self.block:
            parts.append(f"block={self.block}")
        if self.instruction:
            parts.append(f"instr=%{self.instruction}")
        return ", ".join(parts)

    def format(self) -> str:
        loc = self.location()
        if not loc:
            return self.message
        # The location rides after the message (and after any IR dump the
        # message embeds) so regex matching on the message keeps working.
        return f"{self.message}\n  [{loc}]"

    def as_dict(self) -> Dict[str, object]:
        return {
            "severity": self.severity.value,
            "message": self.message,
            "stage": self.stage,
            "pass_name": self.pass_name,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
            "detail": dict(self.detail),
        }


class ReproError(Exception):
    """Root of every deliberate repro error; carries a :class:`Diagnostic`.

    Subclasses may mix in builtin exception bases (``SyntaxError``,
    ``TypeError``) *after* this class so the structured ``__init__`` runs
    while ``isinstance`` checks against the builtins keep holding.
    """

    #: default ``Diagnostic.stage`` for instances of the subclass.
    default_stage = ""

    def __init__(
        self,
        message: object = "",
        *,
        severity: Severity = Severity.ERROR,
        stage: Optional[str] = None,
        pass_name: str = "",
        function: str = "",
        block: str = "",
        instruction: str = "",
        detail: Optional[Dict[str, object]] = None,
        diagnostic: Optional[Diagnostic] = None,
    ):
        if diagnostic is None:
            diagnostic = Diagnostic(
                message=str(message),
                severity=severity,
                stage=self.default_stage if stage is None else stage,
                pass_name=pass_name,
                function=function,
                block=block,
                instruction=instruction,
                detail=dict(detail or {}),
            )
        self.diagnostic = diagnostic
        super().__init__(diagnostic.format())

    def __reduce__(self):
        """Pickle by reconstructing from the structured :class:`Diagnostic`.

        The default ``BaseException`` reduce re-runs ``__init__`` with the
        *formatted* message, which demotes the structured provenance
        (stage/pass/function/detail) to free text and silently drops the
        ``__cause__``/``__context__`` chain.  Shard workers ship errors to
        the supervisor over a pipe, so the round-trip must be lossless.
        """
        attrs = {k: v for k, v in self.__dict__.items() if k != "diagnostic"}
        return (
            _restore_error,
            (type(self), self.diagnostic, attrs, self.__cause__,
             self.__context__, self.__suppress_context__),
        )


def _restore_error(cls, diagnostic, attrs, cause, context, suppress_context):
    """Unpickle hook for :class:`ReproError` (see ``__reduce__``).

    Bypasses the subclass ``__init__`` (builtin mixins like ``SyntaxError``
    have incompatible signatures) and rebuilds the instance field by field.
    """
    exc = cls.__new__(cls)
    BaseException.__init__(exc, diagnostic.format())
    exc.diagnostic = diagnostic
    if attrs:
        exc.__dict__.update(attrs)
    exc.__cause__ = cause
    exc.__context__ = context
    exc.__suppress_context__ = suppress_context
    return exc


def attach_location(
    exc: BaseException,
    *,
    function: str = "",
    block: str = "",
    instruction: str = "",
) -> None:
    """Fill *empty* location fields of a :class:`ReproError` in flight.

    Emitters close to the IR (the vectorizer's per-block loop) call this in
    ``except`` clauses so that errors raised by deeper layers — which know
    *why* but not *where* — gain function/block/instruction provenance
    without losing their original message.  Fields already set by the
    raiser win; non-``ReproError`` exceptions are left untouched.  The
    rendered ``str(exc)`` is not rebuilt (it was fixed at raise time); the
    structured :class:`Diagnostic` is what downstream consumers — the
    region-fallback planner, telemetry — read.
    """
    if not isinstance(exc, ReproError):
        return
    diag = exc.diagnostic
    if function and not diag.function:
        diag.function = function
    if block and not diag.block:
        diag.block = block
    if instruction and not diag.instruction:
        diag.instruction = instruction


class ReproWarning(UserWarning):
    """A non-fatal finding carrying the same structured :class:`Diagnostic`
    as :class:`ReproError` — used for recoverable misconfigurations (an
    unparsable environment knob, say) that must be *visible* without
    failing the compile."""

    def __init__(self, diagnostic: Diagnostic):
        self.diagnostic = diagnostic
        super().__init__(diagnostic.format())


def emit_warning(
    message: str,
    *,
    stage: str = "",
    pass_name: str = "",
    function: str = "",
    detail: Optional[Dict[str, object]] = None,
    stacklevel: int = 3,
) -> Diagnostic:
    """Emit a structured :class:`ReproWarning` through :mod:`warnings`.

    Returns the :class:`Diagnostic` so call sites can also log or attach
    it.  ``stacklevel`` defaults to the *caller's caller* — the config
    reader's own caller is usually the interesting frame.
    """
    diag = Diagnostic(
        message=message,
        severity=Severity.WARNING,
        stage=stage,
        pass_name=pass_name,
        function=function,
        detail=dict(detail or {}),
    )
    warnings.warn(ReproWarning(diag), stacklevel=stacklevel)
    return diag


class CompileError(ReproError):
    """An error while *producing* IR (front-end through back-end cleanup)."""


class ExecutionError(ReproError):
    """An error while *running* IR (VM traps, memory faults)."""

    default_stage = "vm"
