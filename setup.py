"""Setup shim for environments without the `wheel` package (offline CI)."""
from setuptools import setup

setup()
