#!/usr/bin/env python3
"""Regenerate Figure 5: speedup over un-vectorized scalar compilation on
the 72 Simd Library kernels, for hand-written intrinsics, Parsimony, and
LLVM auto-vectorization (paper §6).

    python examples/fig5_report.py [--full] [--telemetry out.json]
                                  [--no-fuse] [--disk-cache]

``--telemetry PATH`` collects pipeline observability — pass timings,
vectorizer shape/memory-form counters, per-function VM cycle
attribution — and writes it as structured JSON.

Paper reference points: geomeans 7.91x (hand-written), 7.70x (Parsimony),
3.46x (auto-vectorization); Parsimony reaches 0.97x of hand-written and
2.23x of auto-vectorization.
"""

import argparse

from repro import telemetry
from repro.benchsuite import geomean, measure_kernel, summarize_telemetry
from repro.benchsuite.simdlib import KERNELS
from repro.driver import set_disk_cache


def report(full: bool, superinstructions=None):
    print("Figure 5 — speedup over scalar (model cycles), 72 Simd Library kernels")
    if full:
        print(f"{'#':>3s} {'kernel':38s} {'autovec':>8s} {'psim':>8s} {'hand':>8s}")
    rows = []
    for index, spec in enumerate(KERNELS, 1):
        speedups = measure_kernel(spec, superinstructions=superinstructions)
        rows.append((spec.name, speedups))
        if full:
            print(
                f"{index:3d} {spec.name:38s} {speedups['autovec']:8.2f} "
                f"{speedups['parsimony']:8.2f} {speedups['handwritten']:8.2f}"
            )
    print("-" * 68)
    for impl, label in (
        ("autovec", "LLVM Auto-vectorization"),
        ("parsimony", "Parsimony"),
        ("handwritten", "Hand-written AVX-512"),
    ):
        g = geomean([s[impl] for _, s in rows])
        print(f"geomean {label:26s} {g:8.2f}")
    ratio = geomean([s["parsimony"] / s["handwritten"] for _, s in rows])
    av_ratio = geomean([s["parsimony"] / s["autovec"] for _, s in rows])
    print(f"\nParsimony / hand-written: {ratio:.2f}   (paper: 0.97)")
    print(f"Parsimony / auto-vec:     {av_ratio:.2f}   (paper: 2.23)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="print the per-kernel table"
    )
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write pipeline telemetry (pass timings, vectorizer counters, "
             "VM hot-spots) as JSON to PATH",
    )
    parser.add_argument(
        "--no-fuse", action="store_true",
        help="disable the VM's decode-level superinstruction fusion",
    )
    parser.add_argument(
        "--disk-cache", action="store_true",
        help="enable the persistent on-disk compile cache",
    )
    args = parser.parse_args()

    if args.disk_cache:
        set_disk_cache(True)
    superinstructions = False if args.no_fuse else None

    if args.telemetry:
        with telemetry.collect() as session:
            report(args.full, superinstructions)
        session.meta["figure"] = "fig5"
        session.meta["cycles_by_kernel"] = summarize_telemetry(session)
        session.write(args.telemetry)
        print(f"\ntelemetry written to {args.telemetry}")
    else:
        report(args.full, superinstructions)


if __name__ == "__main__":
    main()
