#!/usr/bin/env python3
"""Regenerate Figure 5: speedup over un-vectorized scalar compilation on
the 72 Simd Library kernels, for hand-written intrinsics, Parsimony, and
LLVM auto-vectorization (paper §6).

    python examples/fig5_report.py [--full]

Paper reference points: geomeans 7.91x (hand-written), 7.70x (Parsimony),
3.46x (auto-vectorization); Parsimony reaches 0.97x of hand-written and
2.23x of auto-vectorization.
"""

import sys

from repro.benchsuite import geomean, measure_kernel
from repro.benchsuite.simdlib import KERNELS


def main():
    full = "--full" in sys.argv
    print("Figure 5 — speedup over scalar (model cycles), 72 Simd Library kernels")
    if full:
        print(f"{'#':>3s} {'kernel':38s} {'autovec':>8s} {'psim':>8s} {'hand':>8s}")
    rows = []
    for index, spec in enumerate(KERNELS, 1):
        speedups = measure_kernel(spec)
        rows.append((spec.name, speedups))
        if full:
            print(
                f"{index:3d} {spec.name:38s} {speedups['autovec']:8.2f} "
                f"{speedups['parsimony']:8.2f} {speedups['handwritten']:8.2f}"
            )
    print("-" * 68)
    for impl, label in (
        ("autovec", "LLVM Auto-vectorization"),
        ("parsimony", "Parsimony"),
        ("handwritten", "Hand-written AVX-512"),
    ):
        g = geomean([s[impl] for _, s in rows])
        print(f"geomean {label:26s} {g:8.2f}")
    ratio = geomean([s["parsimony"] / s["handwritten"] for _, s in rows])
    av_ratio = geomean([s["parsimony"] / s["autovec"] for _, s in rows])
    print(f"\nParsimony / hand-written: {ratio:.2f}   (paper: 0.97)")
    print(f"Parsimony / auto-vec:     {av_ratio:.2f}   (paper: 2.23)")


if __name__ == "__main__":
    main()
