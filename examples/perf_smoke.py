#!/usr/bin/env python3
"""CI perf-smoke: reduced ispc-suite sweep with superinstructions on/off.

    python examples/perf_smoke.py [--kernels a,b] [--impls scalar,parsimony]
                                  [--out telemetry.json]

Runs each selected kernel under the pre-decoded VM twice — decode-level
fusion enabled and disabled — and **fails (exit 1)** if:

* the fused engine's outputs diverge bit-for-bit from the unfused engine,
* the fused ``ExecStats`` (cycles, instructions, per-opcode counts)
  diverge from the unfused engine (the accounting-transparency contract),
* any kernel/impl records zero ``vm.fuse.window`` hits.

``--out`` writes the collected telemetry JSON (including the flattened
``vm.fuse.*`` counters and per-run wall-clock) for upload as a CI
artifact; the fused-vs-unfused wall-clock ratio per kernel is recorded in
``meta.perf_smoke``.
"""

import argparse
import sys

import numpy as np

from repro import telemetry
from repro.benchsuite import run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS

DEFAULT_KERNELS = "mandelbrot,noise,stencil"
DEFAULT_IMPLS = "scalar,parsimony"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", default=DEFAULT_KERNELS,
                        help="comma-separated suite kernels to sweep")
    parser.add_argument("--impls", default=DEFAULT_IMPLS,
                        help="comma-separated implementations to run")
    parser.add_argument("--out", metavar="PATH",
                        help="write telemetry JSON (CI artifact)")
    args = parser.parse_args()

    wanted = args.kernels.split(",")
    specs = [s for s in BENCHMARKS if s.name in wanted]
    unknown = set(wanted) - {s.name for s in specs}
    if unknown:
        parser.error(f"unknown kernels: {sorted(unknown)}")
    impls = args.impls.split(",")

    failures = []
    rows = {}
    with telemetry.collect() as session:
        for spec in specs:
            for impl in impls:
                # Two reps each; min() reports steady-state dispatch cost
                # (the first fused run also pays one-time window codegen).
                run_impl(spec, impl, superinstructions=True)
                fused = run_impl(spec, impl, superinstructions=True)
                run_impl(spec, impl, superinstructions=False)
                unfused = run_impl(spec, impl, superinstructions=False)
                fused_runs = session.vm_runs[-4:-2]
                unfused_runs = session.vm_runs[-2:]
                fused_run = fused_runs[-1]
                name = f"{spec.name}/{impl}"

                stats_ok = (
                    fused.stats.cycles == unfused.stats.cycles
                    and fused.stats.instructions == unfused.stats.instructions
                    and dict(fused.stats.counts) == dict(unfused.stats.counts)
                )
                if not stats_ok:
                    failures.append(f"{name}: fused ExecStats diverge from unfused")
                sig_f, sig_u = fused.output_signature(), unfused.output_signature()
                out_ok = len(sig_f) == len(sig_u) and all(
                    np.array_equal(a, b) for a, b in zip(sig_f, sig_u)
                )
                if not out_ok:
                    failures.append(f"{name}: fused outputs diverge from unfused")
                hits = fused_run.get("fusion", {}).get("hits", {})
                if not hits.get("window"):
                    failures.append(f"{name}: zero vm.fuse.window hits")

                wall_f = min(r.get("wall_seconds") or 0.0 for r in fused_runs)
                wall_u = min(r.get("wall_seconds") or 0.0 for r in unfused_runs)
                rows[name] = {
                    "wall_fused": wall_f,
                    "wall_unfused": wall_u,
                    "dispatch_speedup": (wall_u / wall_f) if wall_f else None,
                    "stats_identical": stats_ok,
                    "outputs_identical": out_ok,
                    "fuse_hits": dict(hits),
                }
                print(
                    f"{name:32s} unfused={wall_u * 1e3:7.1f}ms "
                    f"fused={wall_f * 1e3:7.1f}ms "
                    f"speedup={rows[name]['dispatch_speedup']:5.2f}x "
                    f"stats={'ok' if stats_ok else 'DIVERGED'} "
                    f"out={'ok' if out_ok else 'DIVERGED'}"
                )

    session.meta["perf_smoke"] = rows
    fuse_totals = session.vm_fuse_totals()
    print(f"\nvm.fuse totals: {fuse_totals}")
    if args.out:
        session.write(args.out)
        print(f"telemetry written to {args.out}")

    if failures:
        print("\nPERF-SMOKE FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nperf-smoke OK: fused engine bit-identical to unfused")


if __name__ == "__main__":
    main()
