#!/usr/bin/env python3
"""CI perf-smoke: reduced ispc-suite sweep across engine configurations.

    python examples/perf_smoke.py [--kernels a,b] [--impls scalar,parsimony]
                                  [--out telemetry.json] [--autotune]

Runs each selected kernel under the pre-decoded VM in four configurations
— batched+fused (the default engine), batched+unfused, unbatched+fused
(``REPRO_NO_BATCH=1``), and whole-kernel codegen (``codegen=True``, the
top of the engine ladder) — and **fails (exit 1)** if:

* any configuration's outputs diverge bit-for-bit from any other,
* any configuration's ``ExecStats`` (cycles, instructions, per-opcode
  counts) diverge (the accounting-transparency contract: neither fusion,
  gang batching, nor whole-kernel codegen may change what the machine
  model charges),
* any kernel/impl records zero ``vm.fuse.window`` hits on the unbatched
  fused run,
* the parsimony implementation never engages gang batching across the
  sweep (``vm.batch.applied`` stays zero — the layer silently died),
* the codegen engine never compiles a kernel across the sweep
  (``vm.codegen.calls`` stays zero — every kernel bailed out), or a
  kernel where codegen *did* engage runs slower than the codegen floor
  (default 0.9× the batched engine, measured interleaved),
* any parsimony kernel records a codegen bailout at all (the coverage
  floor: every fig4 kernel must compile — a new bailout reason is a
  coverage regression, not an acceptable fallback).

``--bailout-out`` writes the per-kernel codegen bailout histogram as a
JSON artifact so a coverage regression names the reason in CI.

``--autotune`` adds a fourth configuration for the parsimony
implementation: profile-guided selection (``REPRO_AUTOTUNE=1``).  It
additionally **fails** if any kernel's autotuned configuration runs
slower than 0.95× plain unbatched — the regression the tuner exists to
prevent (a statically mis-batched kernel like stencil losing wall-clock
to the unbatched engine) — or if the autotuned outputs/``ExecStats``
diverge from the other configurations.

``--shards N`` adds a sharded configuration: every kernel/impl also runs
through the supervised multi-process executor (``REPRO_SHARDS=N``, see
:mod:`repro.shard`) and **fails** if its outputs or ``ExecStats`` diverge
from the in-process run, or if sharding never engages across the sweep.
With ``REPRO_FAULT_PLAN`` set (e.g.
``worker_crash::0:1;worker_hang::0:1``), the same plans are armed around
both the in-process comparator and the sharded run — the fault matrix —
and the sweep additionally **fails** if an armed worker fault fires
without a recorded retry/degradation, or never fires at all on a sharded
launch.

``--out`` writes the collected telemetry JSON (flattened ``vm.fuse.*``,
``vm.batch.*``, ``vm.autotune.*``, ``vm.shard.*``, and ``vm.codegen.*``
counters, per-run wall-clock) for upload as a CI artifact; per-kernel
wall-clock for all configurations plus the fused-vs-unfused,
batched-vs-unbatched, codegen-vs-batched, and autotuned-vs-unbatched
ratios land in ``meta.perf_smoke``.
"""

import argparse
import json
import os
import sys

import numpy as np

from repro import faultinject, telemetry
from repro.benchsuite import run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS

DEFAULT_KERNELS = "mandelbrot,noise,stencil"
DEFAULT_IMPLS = "scalar,parsimony"


def _stats_equal(a, b):
    return (
        a.stats.cycles == b.stats.cycles
        and a.stats.instructions == b.stats.instructions
        and dict(a.stats.counts) == dict(b.stats.counts)
    )


def _outputs_equal(a, b):
    sig_a, sig_b = a.output_signature(), b.output_signature()
    return len(sig_a) == len(sig_b) and all(
        np.array_equal(x, y) for x, y in zip(sig_a, sig_b)
    )


def _timed_pair(session, spec, impl, superinstructions):
    """Two reps; min() reports steady-state dispatch cost (the first run
    also pays one-time decode/window/batch codegen)."""
    run_impl(spec, impl, superinstructions=superinstructions)
    result = run_impl(spec, impl, superinstructions=superinstructions)
    runs = session.vm_runs[-2:]
    wall = min(r.get("wall_seconds") or 0.0 for r in runs)
    return result, runs[-1], wall


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", default=DEFAULT_KERNELS,
                        help="comma-separated suite kernels to sweep")
    parser.add_argument("--impls", default=DEFAULT_IMPLS,
                        help="comma-separated implementations to run")
    parser.add_argument("--out", metavar="PATH",
                        help="write telemetry JSON (CI artifact)")
    parser.add_argument("--autotune", action="store_true",
                        help="also sweep the profile-guided configuration "
                             "(REPRO_AUTOTUNE=1) and fail if it runs slower "
                             "than 0.95x plain unbatched on any kernel")
    parser.add_argument("--autotune-floor", type=float, default=0.95,
                        metavar="RATIO",
                        help="minimum unbatched/autotuned wall-clock ratio "
                             "(default: 0.95)")
    parser.add_argument("--codegen-floor", type=float, default=0.9,
                        metavar="RATIO",
                        help="minimum batched/codegen wall-clock ratio for "
                             "kernels where codegen engaged (default: 0.9)")
    parser.add_argument("--bailout-out", metavar="PATH",
                        help="write the per-kernel codegen bailout "
                             "histogram JSON (CI artifact)")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="also sweep the sharded multi-process executor "
                             "(REPRO_SHARDS=N) and fail on any divergence "
                             "from the in-process run; honors "
                             "REPRO_FAULT_PLAN worker-fault matrices")
    args = parser.parse_args()

    wanted = args.kernels.split(",")
    specs = [s for s in BENCHMARKS if s.name in wanted]
    unknown = set(wanted) - {s.name for s in specs}
    if unknown:
        parser.error(f"unknown kernels: {sorted(unknown)}")
    impls = args.impls.split(",")

    failures = []
    rows = {}
    faults_fired = 0
    bailouts_by_kernel = {}
    saved_no_batch = os.environ.get("REPRO_NO_BATCH")
    saved_autotune = os.environ.get("REPRO_AUTOTUNE")
    saved_shards = os.environ.get("REPRO_SHARDS")
    saved_codegen = os.environ.get("REPRO_CODEGEN")
    saved_no_codegen = os.environ.get("REPRO_NO_CODEGEN")
    with telemetry.collect() as session:
        for spec in specs:
            for impl in impls:
                name = f"{spec.name}/{impl}"
                # The compile cache keys on the batch request, so toggling
                # the environment between runs compiles fresh modules
                # rather than rehydrating the other configuration's twin.
                os.environ.pop("REPRO_NO_BATCH", None)
                os.environ.pop("REPRO_AUTOTUNE", None)
                os.environ.pop("REPRO_SHARDS", None)
                os.environ.pop("REPRO_CODEGEN", None)
                os.environ.pop("REPRO_NO_CODEGEN", None)
                fused, fused_run, wall_f = _timed_pair(
                    session, spec, impl, superinstructions=True)
                unfused, _, wall_uf = _timed_pair(
                    session, spec, impl, superinstructions=False)
                try:
                    os.environ["REPRO_NO_BATCH"] = "1"
                    nobatch, nobatch_run, wall_nb = _timed_pair(
                        session, spec, impl, superinstructions=True)
                finally:
                    os.environ.pop("REPRO_NO_BATCH", None)
                # Whole-kernel codegen: same interleaved idiom as the
                # autotune floor — alternating batched/codegen samples so
                # machine-phase noise lands on both sides of the ratio.
                # The first codegen run pays the one-time compile; min(3)
                # reports the steady-state call-through cost.
                walls_cgb, walls_cg = [], []
                cgres = cg_run = None
                for _ in range(3):
                    run_impl(spec, impl, superinstructions=True)
                    walls_cgb.append(
                        session.vm_runs[-1].get("wall_seconds") or 0.0)
                    cgres = run_impl(spec, impl, superinstructions=True,
                                     codegen=True)
                    cg_run = session.vm_runs[-1]
                    walls_cg.append(cg_run.get("wall_seconds") or 0.0)
                wall_cgb, wall_cg = min(walls_cgb), min(walls_cg)
                cg_report = cg_run.get("codegen") or {}
                cg_bailouts = dict(cg_report.get("bailouts") or {})
                bailouts_by_kernel[name] = cg_bailouts
                if impl == "parsimony" and cg_bailouts:
                    # The coverage floor: every fig4 kernel must compile.
                    # A bailout silently runs the kernel decoded — legal
                    # for correctness, but a coverage regression CI must
                    # name and fail.
                    failures.append(
                        f"{name}: codegen bailed out on a fig4 kernel "
                        f"(coverage floor is zero bailouts): {cg_bailouts}")

                tuned = tuned_run = wall_at = wall_nbi = None
                if args.autotune and impl == "parsimony":
                    # The floor compares *interleaved* unbatched/autotuned
                    # samples (min of 3 each): alternating the two configs
                    # run-by-run means a slow machine phase (CPU quota
                    # throttling, a noisy neighbor) lands on both sides of
                    # the ratio instead of biasing whichever ran last.
                    # The first autotuned run sweeps candidates and pins;
                    # the rest run the pinned configuration.
                    walls_nbi, walls_at = [], []
                    for _ in range(3):
                        try:
                            os.environ["REPRO_NO_BATCH"] = "1"
                            run_impl(spec, impl, superinstructions=True)
                        finally:
                            os.environ.pop("REPRO_NO_BATCH", None)
                        walls_nbi.append(
                            session.vm_runs[-1].get("wall_seconds") or 0.0)
                        try:
                            os.environ["REPRO_AUTOTUNE"] = "1"
                            tuned = run_impl(spec, impl,
                                             superinstructions=True)
                        finally:
                            os.environ.pop("REPRO_AUTOTUNE", None)
                        tuned_run = session.vm_runs[-1]
                        walls_at.append(
                            tuned_run.get("wall_seconds") or 0.0)
                    wall_at = min(walls_at)
                    wall_nbi = min(walls_nbi)

                shard_base = shard_result = shard_report = None
                fault_log = []
                wall_sh = plans = None
                if args.shards:
                    # Worker-fault plans stay armed around *both* runs:
                    # while any plan is active the compile cache is
                    # bypassed, so the in-process comparator must live
                    # under the same injection state as the sharded run to
                    # execute an identical module.  Worker sites are only
                    # consumed by the shard supervisor, so the comparator
                    # does not eat the plans' firing budget.
                    plans = faultinject.plans_from_env()
                    with faultinject.inject(*plans) as fstate:
                        shard_base = run_impl(spec, impl,
                                              superinstructions=True)
                        try:
                            os.environ["REPRO_SHARDS"] = str(args.shards)
                            shard_result = run_impl(spec, impl,
                                                    superinstructions=True)
                        finally:
                            os.environ.pop("REPRO_SHARDS", None)
                        fault_log = list(fstate.log)
                    shard_run = session.vm_runs[-1]
                    shard_report = shard_run.get("shard") or {}
                    wall_sh = shard_run.get("wall_seconds") or 0.0
                    faults_fired += len(fault_log)

                stats_ok = _stats_equal(fused, unfused)
                if not stats_ok:
                    failures.append(f"{name}: fused ExecStats diverge from unfused")
                out_ok = _outputs_equal(fused, unfused)
                if not out_ok:
                    failures.append(f"{name}: fused outputs diverge from unfused")
                batch_stats_ok = _stats_equal(fused, nobatch)
                if not batch_stats_ok:
                    failures.append(
                        f"{name}: batched ExecStats diverge from unbatched")
                batch_out_ok = _outputs_equal(fused, nobatch)
                if not batch_out_ok:
                    failures.append(
                        f"{name}: batched outputs diverge from unbatched")
                # Batched bodies decode straight to batch blocks, so the
                # fusion-coverage check belongs to the unbatched run.
                hits = nobatch_run.get("fusion", {}).get("hits", {})
                if not hits.get("window"):
                    failures.append(f"{name}: zero vm.fuse.window hits")

                cg_stats_ok = _stats_equal(fused, cgres)
                if not cg_stats_ok:
                    failures.append(
                        f"{name}: codegen ExecStats diverge from batched")
                cg_out_ok = _outputs_equal(fused, cgres)
                if not cg_out_ok:
                    failures.append(
                        f"{name}: codegen outputs diverge from batched")
                # The floor only binds where codegen actually engaged: a
                # bailed-out kernel runs the decoded engine on both sides
                # of the ratio, so comparing it against the floor would
                # just measure noise against itself.
                cg_ratio = (wall_cgb / wall_cg) if wall_cg else None
                if (cg_ratio is not None and cg_ratio < args.codegen_floor
                        and cg_report.get("calls")):
                    failures.append(
                        f"{name}: codegen config runs at {cg_ratio:.2f}x "
                        f"batched (< {args.codegen_floor} floor): "
                        f"{cg_report}")

                rows[name] = {
                    "wall_batched": wall_f,
                    "wall_unfused": wall_uf,
                    "wall_unbatched": wall_nb,
                    "wall_codegen": wall_cg,
                    "dispatch_speedup": (wall_uf / wall_f) if wall_f else None,
                    "batch_speedup": (wall_nb / wall_f) if wall_f else None,
                    "codegen_speedup": cg_ratio,
                    "stats_identical": stats_ok and batch_stats_ok and cg_stats_ok,
                    "outputs_identical": out_ok and batch_out_ok and cg_out_ok,
                    "fuse_hits": dict(hits),
                    "batch": fused_run.get("batch"),
                    "codegen": cg_report,
                }
                tuned_note = ""
                if tuned is not None:
                    if not _stats_equal(tuned, nobatch):
                        failures.append(
                            f"{name}: autotuned ExecStats diverge from unbatched")
                    if not _outputs_equal(tuned, nobatch):
                        failures.append(
                            f"{name}: autotuned outputs diverge from unbatched")
                    # The bug this layer closes: a statically mis-batched
                    # kernel must never run slower autotuned than plain
                    # unbatched (beyond noise).  A tuned factor of 1 means
                    # the tuner *chose* the unbatched engine — both sides
                    # of the ratio run the identical module, so the floor
                    # is vacuously met (comparing noise against itself).
                    ratio = (wall_nbi / wall_at) if wall_at else None
                    tuned_factor = (tuned_run.get("autotune") or {}).get("factor")
                    if (ratio is not None and ratio < args.autotune_floor
                            and tuned_factor != 1):
                        failures.append(
                            f"{name}: autotuned config runs at {ratio:.2f}x "
                            f"unbatched (< {args.autotune_floor} floor): "
                            f"{tuned_run.get('autotune')}")
                    rows[name]["wall_autotuned"] = wall_at
                    rows[name]["autotune_speedup"] = ratio
                    rows[name]["autotune"] = tuned_run.get("autotune")
                    tuned_note = (
                        f"autotuned={wall_at * 1e3:7.1f}ms "
                        f"atx={ratio:5.2f} "
                        f"B={tuned_run.get('autotune', {}).get('factor')} ")
                shard_note = ""
                if shard_result is not None:
                    if not _stats_equal(shard_base, shard_result):
                        failures.append(
                            f"{name}: sharded ExecStats diverge from "
                            f"in-process")
                    if not _outputs_equal(shard_base, shard_result):
                        failures.append(
                            f"{name}: sharded outputs diverge from "
                            f"in-process")
                    mode = shard_report.get("mode")
                    if mode == "degraded" and not plans:
                        failures.append(
                            f"{name}: sharded launch degraded with no "
                            f"faults armed: {shard_report}")
                    if fault_log and not (shard_report.get("retries")
                                          or shard_report.get("degraded")):
                        failures.append(
                            f"{name}: worker faults fired but no retry or "
                            f"degradation was recorded: {shard_report}")
                    rows[name]["shard"] = {
                        "wall": wall_sh,
                        "mode": mode,
                        "retries": shard_report.get("retries"),
                        "degraded": shard_report.get("degraded"),
                        "faults_fired": len(fault_log),
                    }
                    shard_note = f"sharded={wall_sh * 1e3:7.1f}ms [{mode}] "
                all_stats_ok = stats_ok and batch_stats_ok and cg_stats_ok
                all_out_ok = out_ok and batch_out_ok and cg_out_ok
                print(
                    f"{name:32s} unbatched={wall_nb * 1e3:7.1f}ms "
                    f"unfused={wall_uf * 1e3:7.1f}ms "
                    f"batched={wall_f * 1e3:7.1f}ms "
                    f"codegen={wall_cg * 1e3:7.1f}ms "
                    f"{tuned_note}{shard_note}"
                    f"batchx={rows[name]['batch_speedup']:5.2f} "
                    f"cgx={cg_ratio:5.2f} "
                    f"stats={'ok' if all_stats_ok else 'DIVERGED'} "
                    f"out={'ok' if all_out_ok else 'DIVERGED'}"
                )

    if saved_no_batch is not None:
        os.environ["REPRO_NO_BATCH"] = saved_no_batch
    if saved_autotune is not None:
        os.environ["REPRO_AUTOTUNE"] = saved_autotune
    if saved_shards is not None:
        os.environ["REPRO_SHARDS"] = saved_shards
    if saved_codegen is not None:
        os.environ["REPRO_CODEGEN"] = saved_codegen
    if saved_no_codegen is not None:
        os.environ["REPRO_NO_CODEGEN"] = saved_no_codegen

    session.meta["perf_smoke"] = rows
    fuse_totals = session.vm_fuse_totals()
    batch_totals = session.vm_batch_totals()
    codegen_totals = session.vm_codegen_totals()
    print(f"\nvm.fuse totals: {fuse_totals}")
    print(f"vm.batch totals: {batch_totals}")
    print(f"vm.codegen totals: {codegen_totals}")
    if not codegen_totals.get("vm.codegen.calls"):
        failures.append("whole-kernel codegen never ran a compiled kernel "
                        "across the sweep (every kernel bailed out)")
    if args.autotune:
        autotune_totals = session.vm_autotune_totals()
        print(f"vm.autotune totals: {autotune_totals}")
        # A persisted pin from an earlier process produces no fresh pin
        # event, so the liveness check is the per-run decision record.
        if "parsimony" in impls and not any(
            r.get("autotune") for r in session.vm_runs
        ):
            failures.append("autotuner made no decisions across the "
                            "parsimony sweep (layer silently dead)")
    if "parsimony" in impls and not batch_totals.get("vm.batch.applied"):
        failures.append("gang batching never applied across the parsimony sweep")
    if args.shards:
        shard_totals = session.vm_shard_totals()
        print(f"vm.shard totals: {shard_totals}")
        if "parsimony" in impls and not shard_totals.get("vm.shard.sharded"):
            failures.append("sharded executor never engaged across the "
                            "sweep (every launch was rejected)")
        if faultinject.plans_from_env() and not faults_fired:
            failures.append("REPRO_FAULT_PLAN armed worker faults but none "
                            "fired across the sweep")
    if args.out:
        session.write(args.out)
        print(f"telemetry written to {args.out}")
    if args.bailout_out:
        histogram = {}
        for per_kernel in bailouts_by_kernel.values():
            for reason, n in per_kernel.items():
                histogram[reason] = histogram.get(reason, 0) + int(n)
        with open(args.bailout_out, "w") as fh:
            json.dump({
                "schema": "repro-codegen-bailouts/1",
                "histogram": histogram,
                "per_kernel": bailouts_by_kernel,
            }, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"codegen bailout histogram written to {args.bailout_out}")

    if failures:
        print("\nPERF-SMOKE FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nperf-smoke OK: batched/fused/codegen engines bit-identical "
          "to baseline")


if __name__ == "__main__":
    main()
