#!/usr/bin/env python3
"""A tour of the paper's §2.2 semantics arguments, executed.

Reproduces the adjacent-copy example of Listings 1–3 in three settings:

1. serial semantics (the OpenMP interpretation without the pragma): the
   loop-carried dependency makes every element a copy of ``a[0]`` — and
   the auto-vectorizer correctly *refuses* to vectorize it;
2. ispc's gang-synchronous model, where the answer silently depends on
   the gang-size compiler flag (Listing 2);
3. Parsimony, where the gang size is in the program and an explicit
   ``psim_gang_sync()`` makes the intended shift well-defined on every
   target (Listing 3).

    python examples/semantics_tour.py
"""

import numpy as np

from repro import AVX512, SSE4, Interpreter, compile_autovec, compile_parsimony
from repro.ispc import ispc_compile

N = 16

SERIAL = """
void foo(u32* a, u64 n) {
    for (u64 i = 0; i < n; i++) {
        u32 tmp = a[i];
        a[i + 1] = tmp;      // loop-carried dependency!
    }
}
"""

SPMD = """
void foo(u32* a, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        u32 tmp = a[i];
        psim_gang_sync();    // explicit horizontal synchronization (§3)
        a[i + 1] = tmp;
    }
}
"""


def run(module, machine=AVX512):
    interp = Interpreter(module, machine=machine)
    a = np.arange(N + 1, dtype=np.uint32)
    addr = interp.memory.alloc_array(a)
    interp.run("foo", addr, N)
    return interp.memory.read_array(addr, np.uint32, N + 1), interp.stats


def show(title, out, note=""):
    print(f"{title:34s} {out.tolist()}  {note}")


def main():
    print(f"input: a = {list(range(N + 1))}; every version runs a[i+1] = a[i]\n")

    out, stats = run(compile_autovec(SERIAL))
    show("serial (auto-vec baseline):", out,
         "<- serial semantics: all a[0]; vectorizer refused "
         f"(vloads executed: {stats.count('vload')})")

    out, _ = run(ispc_compile(SPMD.replace("gang_size=16", "gang_size=1")), AVX512)
    show("ispc mode, AVX-512 flag (gang 16):", out, "<- 'correct' shift")

    out, _ = run(ispc_compile(SPMD.replace("gang_size=16", "gang_size=1"), SSE4), SSE4)
    show("ispc mode, SSE4 flag (gang 4):", out,
         "<- same program, different target, different answer!")

    for machine, name in ((AVX512, "AVX-512"), (SSE4, "SSE4")):
        out, _ = run(compile_parsimony(SPMD), machine)
        show(f"Parsimony on {name}:", out, "<- gang size is in the program")

    print("\nParsimony's answer is the program's answer on every machine —")
    print("the paper's Listing 2/3 contrast, reproduced end to end.")


if __name__ == "__main__":
    main()
