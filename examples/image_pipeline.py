#!/usr/bin/env python3
"""A realistic multi-stage image pipeline written against the public API.

Chains three Simd-Library-style stages — BGRA→gray conversion, 3x3
Gaussian blur, and binarization — each as a ``psim`` region with the gang
size matched to its element width, and compares the whole pipeline's
cycle cost against the scalar build.  This is the §1 use case: one
compilation unit, multiple SPMD regions, different ideal gang sizes.

    python examples/image_pipeline.py
"""

import numpy as np

from repro import Interpreter, compile_parsimony, compile_scalar

W, H = 128, 64

PIPELINE = """
void to_gray(u8* bgra, u8* gray, u64 n) {
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        i32 b = (i32)bgra[4 * i];
        i32 g = (i32)bgra[4 * i + 1];
        i32 r = (i32)bgra[4 * i + 2];
        gray[i] = (u8)((28 * b + 151 * g + 77 * r + 128) >> 8);
    }
}

void blur(u8* src, u8* dst, u64 w, u64 h) {
    for (u64 y = 0; y < h - 2; y++) {
        u64 row = y * w;
        psim (gang_size=64, num_threads=w - 2) {
            u64 x = psim_get_thread_num();
            u64 p = row + x;
            i32 s = (i32)src[p] + 2 * (i32)src[p + 1] + (i32)src[p + 2]
                  + 2 * (i32)src[p + w] + 4 * (i32)src[p + w + 1] + 2 * (i32)src[p + w + 2]
                  + (i32)src[p + 2 * w] + 2 * (i32)src[p + 2 * w + 1] + (i32)src[p + 2 * w + 2];
            dst[p + w + 1] = (u8)((s + 8) >> 4);
        }
    }
}

void binarize(u8* src, u8* dst, u8 threshold, u64 n) {
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        dst[i] = src[i] > threshold ? (u8)255 : (u8)0;
    }
}

void pipeline(u8* bgra, u8* gray, u8* blurred, u8* mask,
              u8 threshold, u64 w, u64 h) {
    to_gray(bgra, gray, w * h);
    blur(gray, blurred, w, h);
    binarize(blurred, mask, threshold, w * h);
}
"""


def scalar_source() -> str:
    """The same pipeline with plain loops instead of psim regions."""
    src = PIPELINE
    src = src.replace(
        "psim (gang_size=64, num_threads=n) {\n        u64 i = psim_get_thread_num();",
        "for (u64 i = 0; i < n; i++) {",
    )
    src = src.replace(
        "psim (gang_size=64, num_threads=w - 2) {\n            u64 x = psim_get_thread_num();",
        "for (u64 x = 0; x < w - 2; x++) {",
    )
    return src


def run(module):
    interp = Interpreter(module)
    rng = np.random.default_rng(42)
    bgra = interp.memory.alloc_array(rng.integers(0, 256, W * H * 4).astype(np.uint8))
    gray = interp.memory.alloc_array(np.zeros(W * H, np.uint8))
    blurred = interp.memory.alloc_array(np.zeros(W * H, np.uint8))
    mask = interp.memory.alloc_array(np.zeros(W * H, np.uint8))
    interp.run("pipeline", bgra, gray, blurred, mask, 100, W, H)
    return interp.memory.read_array(mask, np.uint8, W * H), interp.stats


def main():
    scalar_mask, scalar_stats = run(compile_scalar(scalar_source()))
    vector_mask, vector_stats = run(compile_parsimony(PIPELINE))
    np.testing.assert_array_equal(scalar_mask, vector_mask)

    fg = int((vector_mask == 255).sum())
    print(f"{W}x{H} BGRA image -> gray -> 3x3 blur -> binarize")
    print(f"  mask foreground pixels: {fg} / {W * H}")
    print(f"  scalar build:    {scalar_stats.cycles:10.0f} cycles")
    print(f"  Parsimony build: {vector_stats.cycles:10.0f} cycles")
    print(f"  pipeline speedup: {scalar_stats.cycles / vector_stats.cycles:8.1f}x")
    print("  (outputs are bit-identical between the two builds)")


if __name__ == "__main__":
    main()
