#!/usr/bin/env python3
"""Differential SPMD kernel fuzz smoke: random kernels, three build
strategies, bitwise agreement.

    REPRO_FUZZ_N=500 python examples/fuzz_smoke.py [--n N] [--telemetry out.json]

Every seed generates one random SPMD kernel (``repro.benchsuite.fuzzgen``)
and compares the fully vectorized build bitwise against the
whole-function-scalarized build (``vectorize`` fault).  On a
deterministic 10% of the seeds a single-shot ``vectorize_block`` fault
additionally forces the region-granular partial-fallback path, and that
build must agree bitwise too.  ``--telemetry PATH`` writes the session
JSON — including ``vectorizer.partial_fallbacks`` records — for the CI
fuzz-smoke job's artifact.

Exits non-zero on any mismatch, or if the forced-partial seeds never
actually engaged the region path (which would mean the smoke was
silently fuzzing a dead feature).
"""

import argparse
import os
import sys

import numpy as np

from repro import telemetry
from repro.benchsuite.fuzzgen import N_THREADS, generate_kernel, workload_arrays
from repro.driver import compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.vm import Interpreter


def run(module, seed):
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module)
    addrs = [interp.memory.alloc_array(arr) for arr in (A, B, C, OUT, IOUT)]
    interp.run("kernel", *addrs, sv, si, N_THREADS)
    return (
        interp.memory.read_array(addrs[3], np.float32, N_THREADS),
        interp.memory.read_array(addrs[4], np.int32, N_THREADS),
    )


def check_seed(seed):
    kernel = generate_kernel(seed)
    want = run(compile_parsimony(kernel.source), seed)

    builds = []
    with inject(FaultPlan(site="vectorize")):
        builds.append(("whole", compile_parsimony(kernel.source)))
    if seed % 10 == 0:
        # Force the region-granular path on a deterministic 10% of seeds:
        # fault a block past the entry so the failure carries provenance.
        plan = FaultPlan(site="vectorize_block", after=1 + seed % 5, times=1)
        with inject(plan):
            builds.append(("partial", compile_parsimony(kernel.source)))

    ok = True
    for label, module in builds:
        got = run(module, seed)
        for g, w in zip(got, want):
            if not np.array_equal(g, w):
                print(f"  FAIL seed {seed} ({label} vs plain):\n{kernel.source}")
                ok = False
                break
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=int(os.environ.get("REPRO_FUZZ_N", "200")),
        help="number of seeds (default: $REPRO_FUZZ_N or 200)",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write session telemetry (incl. partial-fallback records) to PATH",
    )
    args = parser.parse_args()

    print(f"differential kernel fuzz — {args.n} seeds, "
          f"partial fallback forced on every 10th")
    failures = 0
    with telemetry.collect() as session:
        for seed in range(args.n):
            if not check_seed(seed):
                failures += 1
    partials = len(session.partial_fallbacks)
    if args.n >= 10 and partials == 0:
        print("FAIL: forced-partial seeds never engaged the region path")
        failures += 1

    session.meta["harness"] = "fuzz_smoke"
    session.meta["cases"] = args.n
    session.meta["partial_fallbacks_engaged"] = partials
    session.meta["failures"] = failures

    if args.telemetry:
        session.write(args.telemetry)
        print(f"telemetry written to {args.telemetry}")

    if failures:
        print(f"\n{failures} seed(s) FAILED")
        return 1
    print(f"\nall {args.n} seeds agree bitwise "
          f"({partials} region-granular fallback(s) exercised)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
