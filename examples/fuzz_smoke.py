#!/usr/bin/env python3
"""Differential SPMD kernel fuzz smoke: random kernels, four execution
strategies, bitwise agreement.

    REPRO_FUZZ_N=500 python examples/fuzz_smoke.py [--n N] [--telemetry out.json]

Every seed generates one random SPMD kernel (``repro.benchsuite.fuzzgen``)
and compares the fully vectorized build bitwise against the
whole-function-scalarized build (``vectorize`` fault).  On a
deterministic 10% of the seeds a single-shot ``vectorize_block`` fault
additionally forces the region-granular partial-fallback path, and that
build must agree bitwise too.  Every 5th seed also runs the plain build
through the whole-kernel codegen engine (``codegen=True``), which must
agree bitwise on outputs *and* on cycles/instructions (the accounting
contract).

Kernels containing a ``psim_reduce_*_sync`` intrinsic have no scalar
execution strategy — cross-lane communication cannot be scalarized — so
their whole-function-degraded compile must *refuse* with
``CompileError`` rather than fall back; the region-granular build may
either succeed (the faulted region avoided the sync point) or refuse.

``--telemetry PATH`` writes the session JSON — including
``vectorizer.partial_fallbacks`` records — for the CI fuzz-smoke job's
artifact.

Exits non-zero on any mismatch, or if the forced-partial seeds never
engaged the region path, or if the codegen seeds never ran compiled
code (either would mean the smoke was silently fuzzing a dead feature).
"""

import argparse
import os
import sys

import numpy as np

from repro import telemetry
from repro.benchsuite.fuzzgen import N_THREADS, generate_kernel, workload_arrays
from repro.diagnostics import CompileError
from repro.driver import compile_parsimony
from repro.faultinject import FaultPlan, inject
from repro.vm import Interpreter


def run(module, seed, codegen=False):
    A, B, C, OUT, IOUT, sv, si = workload_arrays(seed)
    interp = Interpreter(module, codegen=codegen)
    addrs = [interp.memory.alloc_array(arr) for arr in (A, B, C, OUT, IOUT)]
    interp.run("kernel", *addrs, sv, si, N_THREADS)
    outs = (
        interp.memory.read_array(addrs[3], np.float32, N_THREADS),
        interp.memory.read_array(addrs[4], np.int32, N_THREADS),
    )
    return outs, interp


def check_seed(seed, counts):
    kernel = generate_kernel(seed)
    plain = compile_parsimony(kernel.source)
    want, base = run(plain, seed)

    builds = []
    if kernel.has_reduction:
        # No scalar strategy exists for cross-lane reductions: the
        # whole-function degraded compile must refuse, never mistranslate.
        try:
            with inject(FaultPlan(site="vectorize")):
                compile_parsimony(kernel.source)
        except CompileError:
            counts["refused"] += 1
        else:
            print(f"  FAIL seed {seed}: reduction kernel scalarized "
                  f"whole-function instead of refusing\n{kernel.source}")
            return False
    else:
        with inject(FaultPlan(site="vectorize")):
            builds.append(("whole", compile_parsimony(kernel.source)))
    if seed % 10 == 0:
        # Force the region-granular path on a deterministic 10% of seeds:
        # fault a block past the entry so the failure carries provenance.
        plan = FaultPlan(site="vectorize_block", after=1 + seed % 5, times=1)
        try:
            with inject(plan):
                builds.append(("partial", compile_parsimony(kernel.source)))
        except CompileError:
            # Legal only for reduction kernels, when the faulted region
            # contains the sync point.
            if not kernel.has_reduction:
                print(f"  FAIL seed {seed}: partial fallback refused a "
                      f"reduction-free kernel\n{kernel.source}")
                return False
            counts["refused"] += 1

    ok = True
    for label, module in builds:
        got, _ = run(module, seed)
        for g, w in zip(got, want):
            if not np.array_equal(g, w):
                print(f"  FAIL seed {seed} ({label} vs plain):\n{kernel.source}")
                ok = False
                break

    if seed % 5 == 2:
        # Whole-kernel codegen leg: same module, compiled dispatch.
        got, engine = run(plain, seed, codegen=True)
        report = engine.codegen_report()
        if report["bailouts"]:
            counts["bailed"] += 1
        else:
            counts["compiled"] += 1
        if not all(np.array_equal(g, w) for g, w in zip(got, want)):
            print(f"  FAIL seed {seed} (codegen vs plain):\n{kernel.source}")
            ok = False
        elif (engine.stats.cycles != base.stats.cycles
              or engine.stats.instructions != base.stats.instructions):
            print(f"  FAIL seed {seed}: codegen ExecStats diverge "
                  f"({engine.stats.cycles} vs {base.stats.cycles} cycles)"
                  f"\n{kernel.source}")
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=int(os.environ.get("REPRO_FUZZ_N", "200")),
        help="number of seeds (default: $REPRO_FUZZ_N or 200)",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write session telemetry (incl. partial-fallback records) to PATH",
    )
    args = parser.parse_args()

    print(f"differential kernel fuzz — {args.n} seeds, "
          f"partial fallback forced on every 10th, codegen on every 5th")
    failures = 0
    counts = {"refused": 0, "compiled": 0, "bailed": 0}
    with telemetry.collect() as session:
        for seed in range(args.n):
            if not check_seed(seed, counts):
                failures += 1
    partials = len(session.partial_fallbacks)
    if args.n >= 10 and partials == 0:
        print("FAIL: forced-partial seeds never engaged the region path")
        failures += 1
    if args.n >= 15 and counts["compiled"] == 0:
        print("FAIL: codegen seeds never ran compiled code")
        failures += 1

    session.meta["harness"] = "fuzz_smoke"
    session.meta["cases"] = args.n
    session.meta["partial_fallbacks_engaged"] = partials
    session.meta["reduction_refusals"] = counts["refused"]
    session.meta["codegen_compiled"] = counts["compiled"]
    session.meta["codegen_bailed"] = counts["bailed"]
    session.meta["failures"] = failures

    if args.telemetry:
        session.write(args.telemetry)
        print(f"telemetry written to {args.telemetry}")

    if failures:
        print(f"\n{failures} seed(s) FAILED")
        return 1
    print(f"\nall {args.n} seeds agree bitwise "
          f"({partials} region-granular fallback(s), "
          f"{counts['refused']} reduction refusal(s), "
          f"{counts['compiled']} codegen-compiled)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
