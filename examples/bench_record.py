#!/usr/bin/env python3
"""Record the engine's wall-clock trajectory as a benchmark artifact.

    python examples/bench_record.py [--out BENCH_5.json] [--kernels a,b]
                                    [--reps 2] [--min-geomean 1.0]

Runs every fig4 kernel's Parsimony build under the three engine
generations that successive PRs stacked on the interpreter —

* ``predecoded``  — pre-decoded dispatch, superinstructions off,
                    gang batching off (the PR 1 engine);
* ``fused``       — decode-level superinstructions on, batching off
                    (the PR 4 engine);
* ``batched``     — gang batching on top of fusion (the current engine)

— asserts all three agree bitwise on outputs *and* ``ExecStats`` (both
layers are accounting-transparent by contract), and writes a JSON
artifact with per-kernel wall-clock for each generation plus the
batched-vs-fused geomean speedup.  Exits non-zero on any divergence or
if that geomean falls below ``--min-geomean``.

The artifact is the PR-over-PR trajectory record: CI uploads one per
run, and the checked-in ``BENCH_5.json`` snapshots the machine that
validated this PR's ≥1.4× acceptance bar.
"""

import argparse
import json
import os
import sys

import numpy as np

from repro import telemetry
from repro.benchsuite import geomean, run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS

CONFIGS = ("predecoded", "fused", "batched")


def _run(session, spec, config, reps):
    """Best-of-``reps`` VM wall-clock for one engine configuration.

    Wall-clock covers ``interp.run`` only (the telemetry measurement),
    not compilation or workload setup — the trajectory tracks execution
    engine cost, and the compile cache already absorbs rebuilds.
    """
    no_batch = config in ("predecoded", "fused")
    fuse = config in ("fused", "batched")
    try:
        if no_batch:
            os.environ["REPRO_NO_BATCH"] = "1"
        result = None
        for _ in range(reps):
            result = run_impl(spec, "parsimony", superinstructions=fuse)
        wall = min(r.get("wall_seconds") or 0.0
                   for r in session.vm_runs[-reps:])
        return result, wall
    finally:
        os.environ.pop("REPRO_NO_BATCH", None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_5.json", metavar="PATH",
                        help="artifact path (default: BENCH_5.json)")
    parser.add_argument("--kernels", metavar="NAMES",
                        help="comma-separated subset of fig4 kernels")
    parser.add_argument("--reps", type=int, default=2,
                        help="timing repetitions per configuration (min wins)")
    parser.add_argument("--min-geomean", type=float, default=1.0,
                        help="fail if batched-vs-fused geomean drops below this")
    args = parser.parse_args()

    specs = BENCHMARKS
    if args.kernels:
        wanted = set(args.kernels.split(","))
        unknown = wanted - {s.name for s in BENCHMARKS}
        if unknown:
            parser.error(f"unknown kernels: {sorted(unknown)}")
        specs = [s for s in BENCHMARKS if s.name in wanted]

    failures = []
    kernels = {}
    print(f"{'kernel':20s}" + "".join(f"{c:>14s}" for c in CONFIGS)
          + f"{'batched x':>12s}")
    with telemetry.collect() as session:
        for spec in specs:
            results, walls = {}, {}
            for config in CONFIGS:
                results[config], walls[config] = _run(
                    session, spec, config, args.reps)

            base = results["predecoded"]
            for config in ("fused", "batched"):
                r = results[config]
                if not (r.stats.cycles == base.stats.cycles
                        and r.stats.instructions == base.stats.instructions
                        and dict(r.stats.counts) == dict(base.stats.counts)):
                    failures.append(f"{spec.name}: {config} ExecStats diverge")
                sig, base_sig = r.output_signature(), base.output_signature()
                if len(sig) != len(base_sig) or not all(
                    np.array_equal(a, b) for a, b in zip(sig, base_sig)
                ):
                    failures.append(f"{spec.name}: {config} outputs diverge")

            speedup = walls["fused"] / walls["batched"] if walls["batched"] else None
            kernels[spec.name] = {
                "wall_seconds": walls,
                "cycles": base.stats.cycles,
                "instructions": base.stats.instructions,
                "batched_speedup": speedup,
            }
            print(f"{spec.name:20s}"
                  + "".join(f"{walls[c] * 1e3:12.1f}ms" for c in CONFIGS)
                  + f"{speedup:12.2f}")

    gm = geomean([k["batched_speedup"] for k in kernels.values()
                  if k["batched_speedup"]])
    print("-" * (20 + 14 * len(CONFIGS) + 12))
    print(f"{'geomean batched-vs-fused':48s}{gm:18.2f}")

    doc = {
        "schema": "repro-bench/1",
        "pr": 5,
        "configs": list(CONFIGS),
        "kernels": kernels,
        "geomean_batched_speedup": gm,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench artifact written to {args.out}")

    if gm < args.min_geomean:
        failures.append(
            f"batched-vs-fused geomean {gm:.2f} below floor {args.min_geomean}")
    if failures:
        print("\nBENCH-RECORD FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
