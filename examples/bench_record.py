#!/usr/bin/env python3
"""Record the engine's wall-clock trajectory as a benchmark artifact.

    python examples/bench_record.py [--out BENCH_10.json] [--kernels a,b]
                                    [--reps 2] [--min-geomean 1.0]
                                    [--min-codegen-geomean 1.0]
                                    [--autotune]

Runs every fig4 kernel's Parsimony build under the engine generations
that successive PRs stacked on the interpreter —

* ``predecoded``  — pre-decoded dispatch, superinstructions off,
                    gang batching off (the PR 1 engine);
* ``fused``       — decode-level superinstructions on, batching off
                    (the PR 4 engine);
* ``batched``     — gang batching on top of fusion (the PR 5 engine);
* ``codegen``     — whole-kernel codegen on top of batching: the whole
                    kernel compiled to one generated Python function,
                    the dispatch loop retired (the PR 8 engine, deepened
                    in PR 10 with localized accounting, batch-factor
                    specialization, superinstruction folding, and the
                    dispatch-variable exit merge);
* ``autotuned``   — profile-guided engine/batch/codegen selection
                    (``--autotune``: the PR 6 engine, ``REPRO_AUTOTUNE=1``)

— asserts all configurations agree bitwise on outputs *and*
``ExecStats`` (every layer is accounting-transparent by contract), and
writes a JSON artifact with per-kernel wall-clock for each generation
plus the batched-vs-fused and codegen-vs-batched geomean speedups.
With ``--autotune`` the artifact and the table also record which
configuration the tuner selected for each kernel and why (the measured
candidate ranking).  Exits non-zero on any divergence or if either
geomean falls below its floor (``--min-geomean``,
``--min-codegen-geomean``).

The artifact is the PR-over-PR trajectory record: CI uploads one per
run, and the checked-in ``BENCH_10.json`` snapshots the machine that
validated this PR's ≥1.70× codegen-vs-batched acceptance bar.  The
codegen configuration must additionally record **zero bailouts** on
every fig4 kernel (the coverage floor).
"""

import argparse
import json
import os
import sys

import numpy as np

from repro import telemetry
from repro.benchsuite import geomean, run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS

CONFIGS = ("predecoded", "fused", "batched", "codegen")


def _run_once(session, spec, config):
    """One VM run of ``config``; returns ``(result, wall, autotune)``.

    Wall-clock covers ``interp.run`` only (the telemetry measurement),
    not compilation or workload setup — the trajectory tracks execution
    engine cost, and the compile cache already absorbs rebuilds.  The
    ``autotuned`` configuration's measurement sweep is untelemetered, so
    its wall-clock is the pinned configuration's steady-state cost.

    Reps are interleaved round-robin across configurations by the
    caller: a slow machine phase (CPU quota throttling, a noisy
    neighbor) then lands on every configuration instead of biasing
    whichever block of reps it overlapped.
    """
    no_batch = config in ("predecoded", "fused")
    fuse = config != "predecoded"
    # Explicit False freezes ambient REPRO_CODEGEN out of the ladder
    # configs; the autotuned config passes None so the tuner owns the
    # codegen leg along with the batch factor.
    codegen = {"codegen": True, "autotuned": None}.get(config, False)
    try:
        if no_batch:
            os.environ["REPRO_NO_BATCH"] = "1"
        if config == "autotuned":
            os.environ["REPRO_AUTOTUNE"] = "1"
        result = run_impl(spec, "parsimony", superinstructions=fuse,
                          codegen=codegen)
        run = session.vm_runs[-1]
        return result, run.get("wall_seconds") or 0.0, run.get("autotune")
    finally:
        os.environ.pop("REPRO_NO_BATCH", None)
        os.environ.pop("REPRO_AUTOTUNE", None)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_10.json", metavar="PATH",
                        help="artifact path (default: BENCH_10.json)")
    parser.add_argument("--kernels", metavar="NAMES",
                        help="comma-separated subset of fig4 kernels")
    parser.add_argument("--reps", type=int, default=2,
                        help="timing repetitions per configuration, "
                             "interleaved round-robin (min wins)")
    parser.add_argument("--min-geomean", type=float, default=1.0,
                        help="fail if batched-vs-fused geomean drops below this")
    parser.add_argument("--min-codegen-geomean", type=float, default=1.0,
                        help="fail if codegen-vs-batched geomean drops "
                             "below this")
    parser.add_argument("--autotune", action="store_true",
                        help="also run the profile-guided autotuned "
                             "configuration (REPRO_AUTOTUNE=1) and record "
                             "which config it selected and why")
    args = parser.parse_args()

    specs = BENCHMARKS
    if args.kernels:
        wanted = set(args.kernels.split(","))
        unknown = wanted - {s.name for s in BENCHMARKS}
        if unknown:
            parser.error(f"unknown kernels: {sorted(unknown)}")
        specs = [s for s in BENCHMARKS if s.name in wanted]

    configs = CONFIGS + ("autotuned",) if args.autotune else CONFIGS
    failures = []
    kernels = {}
    print(f"{'kernel':20s}" + "".join(f"{c:>14s}" for c in configs)
          + f"{'batched x':>12s}{'codegen x':>12s}")
    with telemetry.collect() as session:
        for spec in specs:
            results, tuned = {}, None
            samples = {config: [] for config in configs}
            cg_bailouts = {}
            for _ in range(args.reps):
                for config in configs:
                    results[config], wall, info = _run_once(
                        session, spec, config)
                    samples[config].append(wall)
                    if config == "autotuned":
                        tuned = info
                    elif config == "codegen":
                        report = session.vm_runs[-1].get("codegen") or {}
                        cg_bailouts = dict(report.get("bailouts") or {})
            walls = {config: min(s) for config, s in samples.items()}
            if cg_bailouts:
                # Coverage floor: every fig4 kernel must compile — a
                # bailout silently runs decoded and poisons the ratio.
                failures.append(
                    f"{spec.name}: codegen bailed out: {cg_bailouts}")

            base = results["predecoded"]
            for config in configs[1:]:
                r = results[config]
                if not (r.stats.cycles == base.stats.cycles
                        and r.stats.instructions == base.stats.instructions
                        and dict(r.stats.counts) == dict(base.stats.counts)):
                    failures.append(f"{spec.name}: {config} ExecStats diverge")
                sig, base_sig = r.output_signature(), base.output_signature()
                if len(sig) != len(base_sig) or not all(
                    np.array_equal(a, b) for a, b in zip(sig, base_sig)
                ):
                    failures.append(f"{spec.name}: {config} outputs diverge")

            speedup = walls["fused"] / walls["batched"] if walls["batched"] else None
            cg_speedup = (walls["batched"] / walls["codegen"]
                          if walls["codegen"] else None)
            kernels[spec.name] = {
                "wall_seconds": walls,
                "cycles": base.stats.cycles,
                "instructions": base.stats.instructions,
                "batched_speedup": speedup,
                "codegen_speedup": cg_speedup,
            }
            if tuned is not None:
                kernels[spec.name]["autotune"] = tuned
            print(f"{spec.name:20s}"
                  + "".join(f"{walls[c] * 1e3:12.1f}ms" for c in configs)
                  + f"{speedup:12.2f}{cg_speedup:12.2f}")
            if tuned is not None:
                print(f"{'':20s}  autotune chose B={tuned['factor']}: "
                      f"{tuned['reason']}")

    gm = geomean([k["batched_speedup"] for k in kernels.values()
                  if k["batched_speedup"]])
    gm_cg = geomean([k["codegen_speedup"] for k in kernels.values()
                     if k["codegen_speedup"]])
    print("-" * (20 + 14 * len(configs) + 24))
    print(f"{'geomean batched-vs-fused':48s}{gm:18.2f}")
    print(f"{'geomean codegen-vs-batched':48s}{gm_cg:18.2f}")

    doc = {
        "schema": "repro-bench/1",
        "pr": 10,
        "configs": list(configs),
        "kernels": kernels,
        "geomean_batched_speedup": gm,
        "geomean_codegen_speedup": gm_cg,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench artifact written to {args.out}")

    if gm < args.min_geomean:
        failures.append(
            f"batched-vs-fused geomean {gm:.2f} below floor {args.min_geomean}")
    if gm_cg < args.min_codegen_geomean:
        failures.append(
            f"codegen-vs-batched geomean {gm_cg:.2f} below floor "
            f"{args.min_codegen_geomean}")
    if failures:
        print("\nBENCH-RECORD FAILURES:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
