#!/usr/bin/env python3
"""Machine-width portability sweep (the paper's §4.3 / SVE discussion).

Parsimony code is compiled against a *gang size*, not a machine width:
the same program runs unmodified on 128-, 256-, 512- (and hypothetical
1024-) bit machines, with the back-end legalizing gang-width vectors to
whatever registers exist.  This example compiles one u8 kernel once per
machine, checks the outputs are identical everywhere, and shows how the
cycle cost scales with register width.

    python examples/width_sweep.py
"""

import numpy as np

from repro import Interpreter, Machine, compile_parsimony
from repro.backend.legalize import legalize_module

N = 4096

SRC = """
void kernel(u8* a, u8* b, u8* c, u64 n) {
    psim (gang_size=64, num_threads=n) {
        u64 i = psim_get_thread_num();
        c[i] = avgr(addsat(a[i], b[i]), absdiff(a[i], b[i]));
    }
}
"""

MACHINES = [
    Machine(name="sse4", vector_bits=128),
    Machine(name="avx2", vector_bits=256),
    Machine(name="avx512", vector_bits=512),
    Machine(name="sve-1024", vector_bits=1024),
]


def run(machine, legalized):
    module = compile_parsimony(SRC)
    if legalized:
        legalize_module(module, machine)
    interp = Interpreter(module, machine=machine)
    rng = np.random.default_rng(11)
    a = interp.memory.alloc_array(rng.integers(0, 256, N).astype(np.uint8))
    b = interp.memory.alloc_array(rng.integers(0, 256, N).astype(np.uint8))
    c = interp.memory.alloc_array(np.zeros(N, np.uint8))
    interp.run("kernel", a, b, c, N)
    return interp.memory.read_array(c, np.uint8, N), interp.stats.cycles


def main():
    print(f"gang-64 u8 kernel over {N} pixels, one source, four machines\n")
    print(f"{'machine':10s} {'bits':>5s} {'cycles (model)':>15s} {'cycles (legalized IR)':>22s}")
    reference = None
    for machine in MACHINES:
        out_m, cycles_m = run(machine, legalized=False)
        out_l, cycles_l = run(machine, legalized=True)
        if reference is None:
            reference = out_m
        assert (out_m == reference).all() and (out_l == reference).all()
        print(f"{machine.name:10s} {machine.vector_bits:5d} {cycles_m:15.0f} {cycles_l:22.0f}")
    print("\nidentical outputs everywhere; cycles scale with register width")
    print("(both via the cost model's legalization factors and via the real")
    print("legalization pass in repro.backend.legalize)")


if __name__ == "__main__":
    main()
