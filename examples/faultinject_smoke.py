#!/usr/bin/env python3
"""Fault-injection smoke: prove the pipeline degrades, never miscompiles.

    python examples/faultinject_smoke.py [--smoke] [--telemetry out.json]

For every Figure 4 benchmark this forces a vectorizer failure with
:mod:`repro.faultinject` and checks the degraded build executes
bit-identically to the pure scalar build, with the fallback reason
recorded in telemetry.  ``--smoke`` runs only mandelbrot (the CI smoke
target); ``--telemetry PATH`` writes the fallback telemetry as JSON (the
CI paranoid job uploads it as an artifact).

Exits non-zero on any mismatch, missing fallback record, or escaped
injected fault.
"""

import argparse
import sys

import numpy as np

from repro import telemetry
from repro.benchsuite import run_impl
from repro.benchsuite.ispc_suite import BENCHMARKS
from repro.faultinject import FaultPlan, inject


def check_benchmark(spec):
    """True when the forced-fallback build matches scalar bit-for-bit."""
    session = telemetry.current()
    already = len(session.fallbacks)
    scalar = run_impl(spec, "scalar")
    with inject(FaultPlan(site="vectorize")):
        degraded = run_impl(spec, "parsimony")
    fallbacks = session.fallbacks[already:]
    ok = bool(fallbacks)
    if not ok:
        print(f"  FAIL {spec.name}: no fallback recorded")
    got, want = degraded.output_signature(), scalar.output_signature()
    for g, w in zip(got, want):
        if not np.array_equal(g, w):
            print(f"  FAIL {spec.name}: degraded output differs from scalar")
            ok = False
            break
    else:
        if ok:
            print(f"  ok   {spec.name}: bit-identical to scalar, "
                  f"{len(fallbacks)} fallback(s) recorded")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the mandelbrot benchmark (CI smoke target)",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write fallback telemetry (reasons, counters) as JSON to PATH",
    )
    args = parser.parse_args()

    specs = BENCHMARKS
    if args.smoke:
        specs = [s for s in BENCHMARKS if s.name == "mandelbrot"]

    print("fault-injection smoke — forced vectorizer failure vs scalar")
    failures = 0
    with telemetry.collect() as session:
        for spec in specs:
            if not check_benchmark(spec):
                failures += 1
    session.meta["harness"] = "faultinject_smoke"
    session.meta["benchmarks"] = [spec.name for spec in specs]
    session.meta["failures"] = failures

    if args.telemetry:
        session.write(args.telemetry)
        print(f"\ntelemetry written to {args.telemetry}")

    if failures:
        print(f"\n{failures} benchmark(s) FAILED")
        return 1
    print(f"\nall {len(specs)} benchmark(s) degraded correctly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
