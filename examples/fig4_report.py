#!/usr/bin/env python3
"""Regenerate Figure 4: Parsimony and ispc performance on the 7 ispc
benchmarks, normalized to LLVM auto-vectorization (paper §6).

    python examples/fig4_report.py [--smoke] [--telemetry out.json]

``--smoke`` runs only the mandelbrot benchmark (the CI smoke target);
``--telemetry PATH`` collects pipeline observability — pass timings,
vectorizer shape/memory-form counters, per-function VM cycle
attribution — and writes it as structured JSON.

Paper reference points: geomean speedup over auto-vectorization is 5.9x
(Parsimony) and 6.0x (ispc); Parsimony matches ispc on every benchmark
except Binomial Options (0.71x of ispc), a gap the paper traces to
SLEEF's AVX-512 ``pow`` being 2.6x slower than ispc's built-in.
"""

import argparse

from repro import telemetry
from repro.benchsuite import geomean, run_impl, summarize_telemetry
from repro.benchsuite.ispc_suite import BENCHMARKS

IMPLS = ("scalar", "autovec", "parsimony", "ispc")


def report(specs):
    print("Figure 4 — speedup over LLVM auto-vectorization (model cycles)")
    print(f"{'benchmark':20s} {'parsimony':>10s} {'ispc':>10s} {'psim/ispc':>10s}")
    rows = []
    for spec in specs:
        cycles = {impl: run_impl(spec, impl).cycles for impl in IMPLS}
        base = cycles["autovec"]
        parsimony = base / cycles["parsimony"]
        ispc = base / cycles["ispc"]
        rows.append((spec.name, parsimony, ispc))
        print(f"{spec.name:20s} {parsimony:10.2f} {ispc:10.2f} {parsimony / ispc:10.2f}")
    print("-" * 52)
    gp = geomean([r[1] for r in rows])
    gi = geomean([r[2] for r in rows])
    print(f"{'geomean':20s} {gp:10.2f} {gi:10.2f} {gp / gi:10.2f}")
    print()
    print("paper: geomean 5.9 (Parsimony) vs 6.0 (ispc); parity everywhere")
    print("       except binomial_options, where SLEEF pow costs 2.6x ispc's.")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the mandelbrot benchmark (CI smoke target)",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write pipeline telemetry (pass timings, vectorizer counters, "
             "VM hot-spots) as JSON to PATH",
    )
    args = parser.parse_args()

    specs = BENCHMARKS
    if args.smoke:
        specs = [s for s in BENCHMARKS if s.name == "mandelbrot"]

    if args.telemetry:
        with telemetry.collect() as session:
            report(specs)
        session.meta["figure"] = "fig4"
        session.meta["cycles_by_kernel"] = summarize_telemetry(session)
        session.write(args.telemetry)
        print(f"\ntelemetry written to {args.telemetry}")
    else:
        report(specs)


if __name__ == "__main__":
    main()
