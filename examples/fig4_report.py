#!/usr/bin/env python3
"""Regenerate Figure 4: Parsimony and ispc performance on the 7 ispc
benchmarks, normalized to LLVM auto-vectorization (paper §6).

    python examples/fig4_report.py [--smoke] [--kernels a,b] [--telemetry out.json]
    python examples/fig4_report.py --telemetry-diff old.json new.json [--diff-out d.json]

``--smoke`` runs only the mandelbrot benchmark (the CI smoke target);
``--kernels`` selects an arbitrary comma-separated subset;
``--telemetry PATH`` collects pipeline observability — pass timings,
vectorizer shape/memory-form counters, per-function VM cycle
attribution, ``vm.fuse.*`` superinstruction counters, and
``vm.codegen.*`` whole-kernel-codegen counters — and writes it as
structured JSON.  ``--no-fuse`` disables the VM's decode-level
superinstructions; ``--disk-cache`` enables the persistent compile cache;
``--autotune`` enables the profile-guided engine/batch selector
(``REPRO_AUTOTUNE=1``) and prints, per kernel, which batch configuration
it chose and why (pinned profile vs fresh measurement sweep);
``--codegen`` runs the VM through whole-kernel codegen
(``REPRO_CODEGEN=1``) and prints, per kernel, the compile/cache/bailout
activity.

``--telemetry-diff OLD NEW`` compares two telemetry documents PR-over-PR
(per-pass timing, per-kernel cycles/wall-clock, every counter) and prints
the deltas; ``--diff-out PATH`` additionally writes the machine-readable
diff JSON.

Paper reference points: geomean speedup over auto-vectorization is 5.9x
(Parsimony) and 6.0x (ispc); Parsimony matches ispc on every benchmark
except Binomial Options (0.71x of ispc), a gap the paper traces to
SLEEF's AVX-512 ``pow`` being 2.6x slower than ispc's built-in.
"""

import argparse
import json
import os

from repro import telemetry
from repro.benchsuite import geomean, run_impl, summarize_telemetry
from repro.benchsuite.ispc_suite import BENCHMARKS
from repro.driver import set_disk_cache

IMPLS = ("scalar", "autovec", "parsimony", "ispc")


def report(specs, superinstructions=None):
    print("Figure 4 — speedup over LLVM auto-vectorization (model cycles)")
    print(f"{'benchmark':20s} {'parsimony':>10s} {'ispc':>10s} {'psim/ispc':>10s}")
    rows = []
    for spec in specs:
        cycles = {
            impl: run_impl(spec, impl, superinstructions=superinstructions).cycles
            for impl in IMPLS
        }
        base = cycles["autovec"]
        parsimony = base / cycles["parsimony"]
        ispc = base / cycles["ispc"]
        rows.append((spec.name, parsimony, ispc))
        print(f"{spec.name:20s} {parsimony:10.2f} {ispc:10.2f} {parsimony / ispc:10.2f}")
    print("-" * 52)
    gp = geomean([r[1] for r in rows])
    gi = geomean([r[2] for r in rows])
    print(f"{'geomean':20s} {gp:10.2f} {gi:10.2f} {gp / gi:10.2f}")
    print()
    print("paper: geomean 5.9 (Parsimony) vs 6.0 (ispc); parity everywhere")
    print("       except binomial_options, where SLEEF pow costs 2.6x ispc's.")


def _print_degradations(session):
    """Summarize graceful-degradation events seen during the run.

    A clean fig4 run reports none; under fault injection (or a vectorizer
    regression) this shows how much vector code each degraded function
    kept — whole-function fallbacks keep none, region-granular partial
    fallbacks keep everything outside the scalarized region.
    """
    partials = session.partial_fallbacks
    fulls = session.fallbacks
    if not partials and not fulls:
        return
    print()
    print(f"degradations: {len(partials)} region-granular, "
          f"{len(fulls)} whole-function")
    for entry in partials:
        kept = 1.0 - entry["block_fraction"]
        print(f"  partial {entry['function']}: "
              f"{entry['blocks_scalarized']}/{entry['blocks_total']} blocks "
              f"scalarized into {len(entry['regions'])} outlined region(s), "
              f"{kept:.0%} of blocks still vectorized")
    for entry in fulls:
        reason = entry["reason"].get("error", "?")
        print(f"  whole   {entry['function']}: {reason}")


def _print_autotune(session):
    """Per-kernel profile-guided selection report (``--autotune``).

    Shows the *last* decision per run label (the steady state: a
    measurement sweep on the first run pins a winner that later runs
    rehydrate) plus the session's ``vm.autotune.*`` event totals.
    """
    print()
    print("autotune decisions (profile-guided engine/batch selection)")
    latest = {}
    for run in session.vm_runs:
        if run.get("autotune"):
            latest[run["label"]] = run["autotune"]
    if not latest:
        print("  none recorded — tuner disabled or overridden by "
              "REPRO_BATCH/REPRO_NO_BATCH")
        return
    for label, at in latest.items():
        print(f"  {label:28s} B={at['factor']:<3d} [{at['state']}] "
              f"{at['reason']}")
    totals = session.vm_autotune_totals()
    print(f"  totals: " + ", ".join(f"{k}={v}" for k, v in totals.items()))


def _print_codegen(session):
    """Per-kernel whole-kernel-codegen report (``--codegen``).

    Shows the *last* codegen record per run label (the steady state:
    later runs rehydrate compiled code from the in-process or disk
    cache) plus the session's ``vm.codegen.*`` counter totals.
    """
    print()
    print("codegen activity (whole-kernel compiled dispatch)")
    latest = {}
    for run in session.vm_runs:
        if run.get("codegen"):
            latest[run["label"]] = run["codegen"]
    if not latest:
        print("  none recorded — codegen disabled or overridden by "
              "REPRO_NO_CODEGEN")
        return
    for label, cg in latest.items():
        bailouts = cg.get("bailouts") or {}
        note = (f"bailouts={dict(bailouts)}" if bailouts
                else "no bailouts")
        print(f"  {label:28s} compiles={cg.get('compiles', 0)} "
              f"cache_hits={cg.get('cache_hits', 0)} "
              f"disk_hits={cg.get('disk_hits', 0)} "
              f"calls={cg.get('calls', 0)} "
              f"replays={cg.get('replays', 0)} {note}")
    totals = session.vm_codegen_totals()
    print(f"  totals: " + ", ".join(f"{k}={v}" for k, v in totals.items()))


def _print_table_diff(title, table, fields, unit=""):
    changed = {
        name: row for name, row in table.items()
        if any(row[f]["delta"] for f in fields)
    }
    print(f"{title} ({len(changed)} of {len(table)} changed)")
    if not changed:
        return
    header = "".join(f"{f + ' old':>16s}{f + ' new':>16s}{'Δ':>12s}" for f in fields)
    print(f"  {'name':28s}{header}")
    for name, row in changed.items():
        cells = ""
        for f in fields:
            d = row[f]
            fmt = "{:>16.6g}{:>16.6g}{:>+12.6g}"
            cells += fmt.format(d["old"], d["new"], d["delta"])
        print(f"  {name:28s}{cells}{unit}")


def _print_per_function_timings(session):
    """Per-function pass-timing breakdown (``--per-function``)."""
    nested = session.pass_timings(per_function=True)
    print()
    print("pass timings by function")
    print(f"  {'pass':24s}{'function':32s}{'calls':>8s}{'seconds':>12s}{'Δinstrs':>10s}")
    for pass_name in sorted(nested):
        for function, entry in sorted(
            nested[pass_name].items(), key=lambda kv: -kv[1]["seconds"]
        ):
            print(f"  {pass_name:24s}{function:32s}{entry['calls']:>8d}"
                  f"{entry['seconds']:>12.6f}{entry['instrs_delta']:>+10d}")


def telemetry_diff(old_path, new_path, diff_out=None, per_function=False):
    with open(old_path) as fh:
        old = json.load(fh)
    with open(new_path) as fh:
        new = json.load(fh)
    diff = telemetry.diff_documents(old, new)
    print(f"Telemetry diff: {old_path} → {new_path}")
    print()
    _print_table_diff("passes", diff["passes"], ("seconds", "calls"))
    if per_function:
        print()
        _print_table_diff(
            "passes by function", diff["passes_by_function"],
            ("seconds", "calls"),
        )
    print()
    _print_table_diff("vm runs", diff["vm_runs"], ("cycles", "wall_seconds"))
    print()
    _print_table_diff("counters", diff["counters"], ("value",))
    # Codegen coverage regressions deserve a headline: a bailout reason
    # that was absent (or rarer) in the old document means kernels fell
    # back to per-instruction dispatch that previously compiled.
    regressed = {
        name: row["value"] for name, row in diff["counters"].items()
        if name.startswith("vm.codegen.bailout.") and row["value"]["delta"] > 0
    }
    if regressed:
        print()
        print("codegen coverage regressions (bailout reasons up vs old)")
        for name, d in regressed.items():
            reason = name[len("vm.codegen.bailout."):]
            print(f"  {reason:28s}{d['old']:>10.6g}{d['new']:>10.6g}"
                  f"{d['delta']:>+10.6g}")
    if diff_out:
        with open(diff_out, "w") as fh:
            json.dump(diff, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\ndiff JSON written to {diff_out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="run only the mandelbrot benchmark (CI smoke target)",
    )
    parser.add_argument(
        "--kernels", metavar="NAMES",
        help="comma-separated subset of suite kernels to run",
    )
    parser.add_argument(
        "--telemetry", metavar="PATH",
        help="write pipeline telemetry (pass timings, vectorizer counters, "
             "VM hot-spots, vm.fuse.* counters) as JSON to PATH",
    )
    parser.add_argument(
        "--telemetry-diff", nargs=2, metavar=("OLD", "NEW"),
        help="diff two telemetry JSON documents and print the deltas",
    )
    parser.add_argument(
        "--diff-out", metavar="PATH",
        help="with --telemetry-diff: also write the diff as JSON to PATH",
    )
    parser.add_argument(
        "--no-fuse", action="store_true",
        help="disable the VM's decode-level superinstruction fusion",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="disable the gang-batching layer (sets REPRO_NO_BATCH=1)",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="enable profile-guided engine/batch selection "
             "(sets REPRO_AUTOTUNE=1) and report the decisions",
    )
    parser.add_argument(
        "--codegen", action="store_true",
        help="run kernels through whole-kernel codegen "
             "(sets REPRO_CODEGEN=1) and report compile/bailout activity",
    )
    parser.add_argument(
        "--per-function", action="store_true",
        help="with --telemetry: print per-function pass-timing breakdowns; "
             "with --telemetry-diff: diff them",
    )
    parser.add_argument(
        "--disk-cache", action="store_true",
        help="enable the persistent on-disk compile cache "
             "($REPRO_CACHE_DIR, default ~/.cache/repro)",
    )
    args = parser.parse_args()

    if args.telemetry_diff:
        telemetry_diff(*args.telemetry_diff, diff_out=args.diff_out,
                       per_function=args.per_function)
        return

    if args.no_batch:
        os.environ["REPRO_NO_BATCH"] = "1"
    if args.autotune:
        os.environ["REPRO_AUTOTUNE"] = "1"
    if args.codegen:
        os.environ["REPRO_CODEGEN"] = "1"
    if args.disk_cache:
        set_disk_cache(True)

    specs = BENCHMARKS
    if args.smoke:
        specs = [s for s in BENCHMARKS if s.name == "mandelbrot"]
    if args.kernels:
        wanted = set(args.kernels.split(","))
        unknown = wanted - {s.name for s in BENCHMARKS}
        if unknown:
            parser.error(f"unknown kernels: {sorted(unknown)}")
        specs = [s for s in BENCHMARKS if s.name in wanted]

    superinstructions = False if args.no_fuse else None

    if args.telemetry or args.autotune or args.codegen:
        # --autotune/--codegen collect a session even without
        # --telemetry: their reports read the per-run records.
        with telemetry.collect() as session:
            report(specs, superinstructions)
        _print_degradations(session)
        if args.autotune:
            _print_autotune(session)
        if args.codegen:
            _print_codegen(session)
        if args.per_function:
            _print_per_function_timings(session)
        if args.telemetry:
            session.meta["figure"] = "fig4"
            session.meta["cycles_by_kernel"] = summarize_telemetry(session)
            session.write(args.telemetry)
            print(f"\ntelemetry written to {args.telemetry}")
    else:
        report(specs, superinstructions)


if __name__ == "__main__":
    main()
