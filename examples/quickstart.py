#!/usr/bin/env python3
"""Quickstart: compile an SPMD kernel with Parsimony and run it.

Walks the whole flow of the paper in ~40 lines: write a PsimC kernel with
a ``psim`` region (§3), compile it through the standard pipeline plus the
Parsimony IR-to-IR pass (§4), run it on the simulated 512-bit machine,
and compare the cycle cost against the un-vectorized build.

    python examples/quickstart.py
"""

import numpy as np

from repro import Interpreter, compile_parsimony, compile_scalar

SAXPY_SPMD = """
void saxpy(f32* x, f32* y, f32 a, u64 n) {
    psim (gang_size=16, num_threads=n) {
        u64 i = psim_get_thread_num();
        y[i] = a * x[i] + y[i];
    }
}
"""

SAXPY_SERIAL = """
void saxpy(f32* x, f32* y, f32 a, u64 n) {
    for (u64 i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
    }
}
"""


def run(module, n=1024):
    interp = Interpreter(module)
    x = np.linspace(0.0, 1.0, n, dtype=np.float32)
    y = np.ones(n, dtype=np.float32)
    x_addr = interp.memory.alloc_array(x)
    y_addr = interp.memory.alloc_array(y)
    interp.run("saxpy", x_addr, y_addr, 2.0, n)
    result = interp.memory.read_array(y_addr, np.float32, n)
    expected = np.float32(2.0) * x + 1.0
    np.testing.assert_array_equal(result, expected)
    return interp.stats


def main():
    scalar = run(compile_scalar(SAXPY_SERIAL))
    vector = run(compile_parsimony(SAXPY_SPMD))

    print("saxpy over 1024 f32 elements on the 512-bit machine model")
    print(f"  scalar build:    {scalar.cycles:10.0f} cycles")
    print(f"  Parsimony build: {vector.cycles:10.0f} cycles")
    print(f"  speedup:         {scalar.cycles / vector.cycles:10.1f}x")
    print()
    print("vector instruction mix of the Parsimony build:")
    for op in ("vload", "vstore", "fmul", "fadd", "gather"):
        print(f"  {op:8s} {vector.counts.get(op, 0)}")
    print("\n(no gathers: shape analysis proved every access unit-stride)")


if __name__ == "__main__":
    main()
